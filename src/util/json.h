#ifndef PHOCUS_UTIL_JSON_H_
#define PHOCUS_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// \file json.h
/// A small self-contained JSON value / parser / serializer.
///
/// Used for PAR instance (de)serialization and bench result exports. Objects
/// preserve insertion order (the serialized instances stay diffable).

namespace phocus {

/// A JSON value: null, bool, number (double), string, array or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(runtime/explicit)
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  Json(int value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(unsigned value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(std::int64_t value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(std::uint64_t value) : Json(static_cast<double>(value)) {}  // NOLINT
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}  // NOLINT

  /// Creates an empty array / object.
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw CheckFailure on type mismatch.
  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;

  /// Array access.
  std::size_t size() const;
  const Json& operator[](std::size_t index) const;
  void Append(Json value);
  const std::vector<Json>& items() const;

  /// Object access. `Set` inserts or overwrites; `Get` throws if missing;
  /// `GetOr` returns a fallback.
  void Set(const std::string& key, Json value);
  bool Has(const std::string& key) const;
  const Json& Get(const std::string& key) const;
  Json GetOr(const std::string& key, Json fallback) const;
  const std::vector<std::pair<std::string, Json>>& entries() const;

  /// Serializes. `indent` < 0 means compact single-line output.
  std::string Dump(int indent = -1) const;

  /// Parses a JSON document; throws CheckFailure on malformed input.
  static Json Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Reads a whole file into a string; throws CheckFailure if unreadable.
std::string ReadFile(const std::string& path);

/// Writes a string to a file; throws CheckFailure on failure.
void WriteFile(const std::string& path, std::string_view contents);

/// Flushes a file's contents to stable storage (fsync); throws CheckFailure
/// if the file cannot be opened or synced. Pair with WriteFile before an
/// atomic rename so a crash cannot surface an empty renamed file.
void SyncFile(const std::string& path);

}  // namespace phocus

#endif  // PHOCUS_UTIL_JSON_H_
