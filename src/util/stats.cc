#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace phocus {

void StatsAccumulator::Add(double value) {
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double StatsAccumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StatsAccumulator::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(values.size() - 1);
  const std::size_t lower = static_cast<std::size_t>(position);
  const std::size_t upper = std::min(lower + 1, values.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return values[lower] + fraction * (values[upper] - values[lower]);
}

}  // namespace phocus
