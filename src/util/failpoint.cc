#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/rng.h"
#include "util/strings.h"

namespace phocus {
namespace failpoint {

namespace internal {

std::atomic<int> g_armed_count{0};

namespace {
std::atomic<TelemetrySink> g_sink{nullptr};
}  // namespace

void SetTelemetrySink(TelemetrySink sink) {
  g_sink.store(sink, std::memory_order_release);
}

}  // namespace internal

namespace {

/// FNV-1a 64 over the failpoint name; mixed with the registry seed so each
/// failpoint draws from its own deterministic RNG stream regardless of the
/// order points are armed or hit.
std::uint64_t NameHash(std::string_view name) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

struct Entry {
  bool armed = false;
  ActionKind kind = ActionKind::kOff;
  double delay_ms = 0.0;
  double probability = 1.0;
  Rng rng{0};
  std::uint64_t hits = 0;
  std::uint64_t triggers = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Entry, std::less<>> entries;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  Registry() { LoadFromEnv(); }

  /// PHOCUS_FAILPOINTS_SEED then PHOCUS_FAILPOINTS, parsed once at process
  /// start (the file-scope initializer below forces construction before
  /// main, so env-armed points fire without any programmatic call).
  void LoadFromEnv() {
    if (const char* env_seed = std::getenv("PHOCUS_FAILPOINTS_SEED")) {
      seed = std::strtoull(env_seed, nullptr, 10);
    }
    const char* env = std::getenv("PHOCUS_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    for (const std::string& pair : Split(env, ',')) {
      const std::string trimmed = Trim(pair);
      if (trimmed.empty()) continue;
      const std::size_t eq = trimmed.find('=');
      PHOCUS_CHECK(eq != std::string::npos && eq > 0,
                   "PHOCUS_FAILPOINTS entry is not name=spec: " + trimmed);
      ConfigureLocked(trimmed.substr(0, eq), trimmed.substr(eq + 1));
    }
  }

  /// Parses `spec` (grammar in failpoint.h) and arms `name`. Caller holds
  /// the mutex or is the constructor.
  void ConfigureLocked(const std::string& name, const std::string& spec) {
    PHOCUS_CHECK(!name.empty(), "failpoint name must not be empty");
    std::string action = Trim(spec);
    double probability = 1.0;
    const std::size_t at = action.rfind('@');
    if (at != std::string::npos) {
      const std::string prob_text = action.substr(at + 1);
      char* end = nullptr;
      probability = std::strtod(prob_text.c_str(), &end);
      PHOCUS_CHECK(end != nullptr && *end == '\0' && !prob_text.empty() &&
                       probability >= 0.0 && probability <= 1.0,
                   "failpoint probability must be in [0, 1]: " + spec);
      action = action.substr(0, at);
    }
    Entry entry;
    entry.probability = probability;
    if (action == "error") {
      entry.kind = ActionKind::kError;
    } else if (action == "short_write") {
      entry.kind = ActionKind::kShortWrite;
    } else if (action == "crash") {
      entry.kind = ActionKind::kCrash;
    } else if (StartsWith(action, "delay:")) {
      const std::string millis = action.substr(6);
      char* end = nullptr;
      entry.delay_ms = std::strtod(millis.c_str(), &end);
      PHOCUS_CHECK(end != nullptr && *end == '\0' && !millis.empty() &&
                       entry.delay_ms >= 0.0,
                   "failpoint delay must be non-negative millis: " + spec);
      entry.kind = ActionKind::kDelay;
    } else {
      throw CheckFailure(
          "unknown failpoint action (want error|delay:ms|short_write|crash): " +
          spec);
    }
    entry.armed = true;
    std::uint64_t stream = seed ^ NameHash(name);
    entry.rng = Rng(SplitMix64(stream));

    Entry& slot = entries[name];
    if (!slot.armed) {
      internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
    }
    entry.hits = slot.hits;  // counters survive re-configuration
    entry.triggers = slot.triggers;
    slot = std::move(entry);
  }
};

Registry& TheRegistry() {
  static Registry* registry = new Registry;  // leaked: outlives all users
  return *registry;
}

/// Forces env parsing before main so PHOCUS_FAILPOINTS arms points even in
/// processes that never call the programmatic API.
const bool g_env_loaded = [] {
  TheRegistry();
  return true;
}();

}  // namespace

Action Evaluate(std::string_view name) {
  Registry& registry = TheRegistry();
  Action action;
  bool fired = false;
  bool counted = false;
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.entries.find(name);
    if (it == registry.entries.end() || !it->second.armed) return action;
    Entry& entry = it->second;
    ++entry.hits;
    counted = true;
    fired = entry.probability >= 1.0 ||
            entry.rng.UniformDouble() < entry.probability;
    if (fired) {
      ++entry.triggers;
      action.kind = entry.kind;
      action.delay_ms = entry.delay_ms;
    }
  }
  // Mirror outside the registry lock: the sink takes the metrics mutex.
  if (counted) {
    if (auto sink = internal::g_sink.load(std::memory_order_acquire)) {
      sink(name, fired);
    }
  }
  return action;
}

void Perform(std::string_view name, const Action& action) {
  switch (action.kind) {
    case ActionKind::kOff:
      return;
    case ActionKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(action.delay_ms));
      return;
    case ActionKind::kError:
    case ActionKind::kShortWrite:  // this site cannot truncate
      throw InjectedFault("injected fault at failpoint " + std::string(name));
    case ActionKind::kCrash:
      throw InjectedCrash("injected crash at failpoint " + std::string(name));
  }
}

void Trigger(std::string_view name) { Perform(name, Evaluate(name)); }

void MaybeDelay(std::string_view name) {
  const Action action = Evaluate(name);
  if (action.kind == ActionKind::kDelay) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(action.delay_ms));
  }
}

void Configure(const std::string& name, const std::string& spec) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.ConfigureLocked(name, spec);
}

bool Deactivate(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.entries.find(name);
  if (it == registry.entries.end() || !it->second.armed) return false;
  it->second.armed = false;
  internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void DeactivateAll() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& [name, entry] : registry.entries) {
    (void)name;
    if (entry.armed) {
      entry.armed = false;
      internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void SetSeed(std::uint64_t seed) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.seed = seed;
}

std::uint64_t HitCount(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.entries.find(name);
  return it == registry.entries.end() ? 0 : it->second.hits;
}

std::uint64_t TriggerCount(const std::string& name) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.entries.find(name);
  return it == registry.entries.end() ? 0 : it->second.triggers;
}

std::vector<std::string> ArmedNames() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  for (const auto& [name, entry] : registry.entries) {
    if (entry.armed) names.push_back(name);
  }
  return names;
}

}  // namespace failpoint
}  // namespace phocus
