#include "util/samplers.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace phocus {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  PHOCUS_CHECK(n > 0, "ZipfSampler requires n > 0");
  PHOCUS_CHECK(exponent >= 0.0, "Zipf exponent must be nonnegative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(std::size_t k) const {
  PHOCUS_CHECK(k < cdf_.size(), "Zipf rank out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  PHOCUS_CHECK(n > 0, "AliasSampler requires at least one weight");
  double total = 0.0;
  for (double w : weights) {
    PHOCUS_CHECK(w >= 0.0, "AliasSampler weights must be nonnegative");
    total += w;
  }
  PHOCUS_CHECK(total > 0.0, "AliasSampler weights must not all be zero");

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::size_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) probability_[i] = 1.0;
  for (std::size_t i : small) probability_[i] = 1.0;
}

std::size_t AliasSampler::Sample(Rng& rng) const {
  const std::size_t column = static_cast<std::size_t>(
      rng.NextBelow(probability_.size()));
  return rng.UniformDouble() < probability_[column] ? column : alias_[column];
}

}  // namespace phocus
