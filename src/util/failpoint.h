#ifndef PHOCUS_UTIL_FAILPOINT_H_
#define PHOCUS_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.h"

/// \file failpoint.h
/// Failpoint fault injection: named hook points compiled into production
/// code paths (vault writes, socket I/O, admission control, replanning)
/// that tests — or an operator via the environment — can arm to inject
/// errors, delays, short writes, or simulated crashes deterministically.
///
/// Cost model: a disarmed failpoint is one relaxed atomic load
/// (`AnyActive()`); the registry lookup, probability draw, and telemetry
/// mirroring only run while at least one failpoint is armed, which never
/// happens outside failure-mode tests.
///
/// Arming a failpoint, programmatically or via the environment:
///
///   failpoint::Configure("vault.rename", "error");         // in a test
///   PHOCUS_FAILPOINTS="socket.write=error@0.3,server.queue_wait=delay:100"
///
/// Spec grammar (the env var holds comma-separated `name=spec` pairs):
///
///   spec    := action ["@" probability]
///   action  := "error" | "delay:" millis | "short_write" | "crash"
///
///  - `error`       throws InjectedFault at the failpoint,
///  - `delay:ms`    sleeps `ms` milliseconds, then continues normally,
///  - `short_write` the call site performs a truncated I/O operation
///                  (sites that cannot truncate treat it as `error`),
///  - `crash`       throws InjectedCrash — simulates the process dying at
///                  that instruction; only scenario harnesses may catch it,
///  - `@p`          triggers the action on each hit with probability `p`
///                  (default 1.0), drawn from a seeded per-failpoint RNG so
///                  a run's fault schedule is reproducible bit-for-bit.
///
/// Every armed failpoint exports `failpoint.<name>.hits` (times evaluated)
/// and `failpoint.<name>.triggers` (times the action fired) through the
/// telemetry registry. Naming convention for the points themselves:
/// `<module>.<operation>`, e.g. `vault.rename`, `socket.read`.
///
/// The catalog of compiled-in failpoints lives in docs/TESTING.md.

namespace phocus {
namespace failpoint {

/// Thrown by an `error`-action failpoint (and by `short_write` at sites
/// that cannot truncate). Derives from CheckFailure so the usual recovery
/// paths treat it like any other I/O failure.
class InjectedFault : public CheckFailure {
 public:
  explicit InjectedFault(const std::string& what) : CheckFailure(what) {}
};

/// Thrown by a `crash`-action failpoint. Simulates the process dying at the
/// failpoint: production code must never catch it (catch InjectedFault or
/// CheckFailure instead — this type deliberately does not derive from
/// InjectedFault); only a scenario harness playing "the restarted process"
/// may swallow it.
class InjectedCrash : public CheckFailure {
 public:
  explicit InjectedCrash(const std::string& what) : CheckFailure(what) {}
};

enum class ActionKind {
  kOff,         ///< not armed, or the probability draw spared this hit
  kError,       ///< throw InjectedFault
  kDelay,       ///< sleep delay_ms, then proceed
  kShortWrite,  ///< truncate the I/O at the call site
  kCrash,       ///< throw InjectedCrash
};

/// The action a single hit of a failpoint resolved to.
struct Action {
  ActionKind kind = ActionKind::kOff;
  double delay_ms = 0.0;

  bool armed() const { return kind != ActionKind::kOff; }
};

namespace internal {
/// Count of currently armed failpoints; the disarmed fast path is one
/// relaxed load of this.
extern std::atomic<int> g_armed_count;

/// Counter mirror hook. phocus_util sits below phocus_telemetry in the
/// dependency DAG, so the failpoint registry cannot call the metrics
/// registry directly; phocus_telemetry installs this sink at static-init
/// time instead. Called once per Evaluate with whether the action fired.
using TelemetrySink = void (*)(std::string_view name, bool triggered);
void SetTelemetrySink(TelemetrySink sink);
}  // namespace internal

/// True when at least one failpoint is armed (including via the
/// PHOCUS_FAILPOINTS environment variable). One relaxed atomic load.
inline bool AnyActive() {
  return internal::g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// Resolves one hit of `name`: applies the probability draw, bumps the
/// hit/trigger counters, and returns the action — without performing it.
/// Call sites that need bespoke behavior (short writes, fail-open caches)
/// interpret the result themselves. Never throws, never sleeps.
Action Evaluate(std::string_view name);

/// Performs an already-Evaluated action: no-op for kOff, sleeps for delay,
/// throws InjectedFault for error (and for short_write — callers that can
/// truncate handle kShortWrite before calling this), InjectedCrash for
/// crash. For sites that Evaluate() and interpret some kinds themselves.
void Perform(std::string_view name, const Action& action);

/// Resolves one hit of `name` and performs the action: throws for
/// error/crash (short_write degrades to error here), sleeps for delay.
/// Prefer the PHOCUS_FAILPOINT macro, which keeps the disarmed fast path.
void Trigger(std::string_view name);

/// Like Trigger but only honors `delay`; error/crash/short_write are
/// counted as triggers and ignored. For sites where an exception cannot
/// propagate safely (worker-thread startup, shutdown drains).
void MaybeDelay(std::string_view name);

/// Arms `name` with `spec` (see the grammar above). Throws CheckFailure on
/// a malformed spec. Re-configuring an armed failpoint replaces its action
/// and resets its RNG stream (counters persist).
void Configure(const std::string& name, const std::string& spec);

/// Disarms `name`; returns false if it was not armed.
bool Deactivate(const std::string& name);

/// Disarms everything (env-configured points included).
void DeactivateAll();

/// Seeds the per-failpoint probability RNG streams (default seed 0x9e37).
/// Takes effect for failpoints configured after the call; tests set the
/// seed first, then Configure. Also settable via PHOCUS_FAILPOINTS_SEED.
void SetSeed(std::uint64_t seed);

/// Times `name` was evaluated / actually fired since it was first armed.
/// Zero for never-armed names.
std::uint64_t HitCount(const std::string& name);
std::uint64_t TriggerCount(const std::string& name);

/// Names of currently armed failpoints, sorted.
std::vector<std::string> ArmedNames();

/// RAII arming for tests: Configure on construction, Deactivate on scope
/// exit (even when the test body throws).
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const std::string& spec)
      : name_(std::move(name)) {
    Configure(name_, spec);
  }
  ~ScopedFailpoint() { Deactivate(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace failpoint
}  // namespace phocus

/// Hook a named failpoint into a production code path. Disarmed cost: one
/// relaxed atomic load and a perfectly-predicted branch.
#define PHOCUS_FAILPOINT(name)                                   \
  do {                                                           \
    if (::phocus::failpoint::AnyActive()) {                      \
      ::phocus::failpoint::Trigger(name);                        \
    }                                                            \
  } while (false)

/// Delay-only variant for sites that cannot let an exception escape.
#define PHOCUS_FAILPOINT_DELAY_ONLY(name)                        \
  do {                                                           \
    if (::phocus::failpoint::AnyActive()) {                      \
      ::phocus::failpoint::MaybeDelay(name);                     \
    }                                                            \
  } while (false)

#endif  // PHOCUS_UTIL_FAILPOINT_H_
