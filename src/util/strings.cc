#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "util/logging.h"

namespace phocus {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) fields.emplace_back(text.substr(start, i - start));
  }
  return fields;
}

std::string Join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(items[i]);
  }
  return out;
}

std::string Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string HumanBytes(std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes >= 1000ULL * 1000 * 1000) return StrFormat("%.1fGB", b / 1e9);
  if (bytes >= 1000ULL * 1000) return StrFormat("%.1fMB", b / 1e6);
  if (bytes >= 1000ULL) return StrFormat("%.1fKB", b / 1e3);
  return StrFormat("%lluB", static_cast<unsigned long long>(bytes));
}

std::uint64_t ParseBytes(std::string_view text) {
  std::string trimmed = Trim(text);
  PHOCUS_CHECK(!trimmed.empty(), "empty byte-size string");
  std::size_t pos = 0;
  while (pos < trimmed.size() &&
         (std::isdigit(static_cast<unsigned char>(trimmed[pos])) ||
          trimmed[pos] == '.')) {
    ++pos;
  }
  PHOCUS_CHECK(pos > 0, "byte-size string must start with a number: " + trimmed);
  double value = std::strtod(trimmed.substr(0, pos).c_str(), nullptr);
  std::string unit = ToLower(Trim(trimmed.substr(pos)));
  double scale = 1.0;
  if (unit.empty() || unit == "b") {
    scale = 1.0;
  } else if (unit == "kb" || unit == "k") {
    scale = 1e3;
  } else if (unit == "mb" || unit == "m") {
    scale = 1e6;
  } else if (unit == "gb" || unit == "g") {
    scale = 1e9;
  } else {
    PHOCUS_CHECK(false, "unknown byte unit: " + unit);
  }
  return static_cast<std::uint64_t>(value * scale);
}

}  // namespace phocus
