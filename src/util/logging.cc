#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <mutex>
#include <thread>

namespace phocus {

namespace {
/// -1 means "not yet initialized": the first read consults the
/// PHOCUS_LOG_LEVEL environment variable (debug|info|warn|error,
/// case-insensitive); SetLogLevel overrides it unconditionally.
std::atomic<int> g_level{-1};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

int LevelFromEnvironment() {
  const char* raw = std::getenv("PHOCUS_LOG_LEVEL");
  if (raw == nullptr) return static_cast<int>(LogLevel::kInfo);
  char lowered[16] = {};
  for (std::size_t i = 0; i < sizeof(lowered) - 1 && raw[i] != '\0'; ++i) {
    lowered[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(raw[i])));
  }
  if (std::strcmp(lowered, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(lowered, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(lowered, "warn") == 0 || std::strcmp(lowered, "warning") == 0) {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (std::strcmp(lowered, "error") == 0) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kInfo);
}

int EffectiveLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level >= 0) return level;
  int expected = -1;
  g_level.compare_exchange_strong(expected, LevelFromEnvironment(),
                                  std::memory_order_relaxed);
  return g_level.load(std::memory_order_relaxed);
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(EffectiveLevel()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < EffectiveLevel()) return;

  // ISO-8601 UTC timestamp with milliseconds.
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%S", &utc);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);

  // Short stable per-thread tag (hash of the opaque std::thread::id).
  const unsigned long tid = static_cast<unsigned long>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffffu);

  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s.%03dZ] [%s] [t:%06lx] %s\n", stamp, millis,
               LevelName(level), tid, message.c_str());
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::ostringstream out;
  out << "CHECK failed at " << file << ":" << line << ": (" << expr << ") "
      << message;
  throw CheckFailure(out.str());
}

}  // namespace internal
}  // namespace phocus
