#ifndef PHOCUS_UTIL_STATS_H_
#define PHOCUS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

/// \file stats.h
/// Streaming statistics accumulator and percentile helpers for benches.

namespace phocus {

/// Welford-style streaming accumulator for mean/variance/min/max.
class StatsAccumulator {
 public:
  void Add(double value);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) by linear interpolation. The input is
/// copied and sorted. Returns 0 for empty input.
double Percentile(std::vector<double> values, double q);

}  // namespace phocus

#endif  // PHOCUS_UTIL_STATS_H_
