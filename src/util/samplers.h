#ifndef PHOCUS_UTIL_SAMPLERS_H_
#define PHOCUS_UTIL_SAMPLERS_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

/// \file samplers.h
/// Discrete distribution samplers used by the dataset generators.

namespace phocus {

/// Zipf(s) distribution over ranks {0, ..., n-1}: P(k) ∝ 1/(k+1)^s.
///
/// Query-log frequencies and label popularities are famously Zipfian, which
/// is what gives the paper's predefined-subset weights their skew.
class ZipfSampler {
 public:
  /// \param n number of ranks (> 0)
  /// \param exponent the skew parameter s (>= 0; 0 gives uniform)
  ZipfSampler(std::size_t n, double exponent);

  /// Draws one rank in [0, n).
  std::size_t Sample(Rng& rng) const;

  /// Probability mass of rank k.
  double Probability(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

/// Walker alias method for O(1) sampling from an arbitrary discrete
/// distribution (weights need not be normalized).
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  std::size_t Sample(Rng& rng) const;
  std::size_t size() const { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<std::size_t> alias_;
};

}  // namespace phocus

#endif  // PHOCUS_UTIL_SAMPLERS_H_
