#ifndef PHOCUS_UTIL_TABLE_H_
#define PHOCUS_UTIL_TABLE_H_

#include <string>
#include <vector>

/// \file table.h
/// ASCII table renderer used by the bench harness to print the paper's
/// tables/figure series in a uniform format, plus a CSV exporter.

namespace phocus {

/// A simple column-aligned text table.
class TextTable {
 public:
  /// Sets the header row (also fixes the column count).
  void SetHeader(std::vector<std::string> header);

  /// Adds a data row; must match the header's column count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Renders with column alignment, a header separator, and an optional
  /// title line.
  std::string Render(const std::string& title = "") const;

  /// Renders as CSV (no title).
  std::string RenderCsv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace phocus

#endif  // PHOCUS_UTIL_TABLE_H_
