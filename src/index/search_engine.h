#ifndef PHOCUS_INDEX_SEARCH_ENGINE_H_
#define PHOCUS_INDEX_SEARCH_ENGINE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/tokenizer.h"

/// \file search_engine.h
/// A small inverted-index search engine with BM25 ranking — the stand-in for
/// XYZ's internal retrieval system. Queries over photo titles/tags produce
/// the pre-defined subsets, and the BM25 retrieval scores become the
/// (pre-normalization) relevance scores R(q, p).

namespace phocus {

class SearchEngine {
 public:
  using DocId = std::uint32_t;

  struct Hit {
    DocId doc = 0;
    double score = 0.0;
  };

  explicit SearchEngine(TokenizerOptions tokenizer_options = {});

  /// Adds a document. Ids must be unique; text is tokenized immediately.
  void AddDocument(DocId id, const std::string& text);

  /// Builds IDF statistics. Must be called after the last AddDocument and
  /// before the first Search.
  void Finalize();

  /// BM25 top-k retrieval (k = 0 means all matching documents), scores
  /// strictly positive, sorted descending (ties by doc id). Repeated query
  /// terms count once (query-frequency saturation with k3 = 0).
  std::vector<Hit> Search(const std::string& query, std::size_t top_k = 0) const;

  std::size_t num_documents() const { return doc_lengths_.size(); }
  std::size_t vocabulary_size() const { return postings_.size(); }

  /// BM25 hyperparameters (exposed for tests).
  static constexpr double kK1 = 1.2;
  static constexpr double kB = 0.75;

 private:
  struct Posting {
    DocId doc;
    std::uint32_t term_frequency;
  };

  TokenizerOptions tokenizer_options_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<DocId, std::uint32_t> doc_lengths_;
  double average_doc_length_ = 0.0;
  bool finalized_ = false;
};

}  // namespace phocus

#endif  // PHOCUS_INDEX_SEARCH_ENGINE_H_
