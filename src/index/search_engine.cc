#include "index/search_engine.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace phocus {

SearchEngine::SearchEngine(TokenizerOptions tokenizer_options)
    : tokenizer_options_(tokenizer_options) {}

void SearchEngine::AddDocument(DocId id, const std::string& text) {
  PHOCUS_CHECK(!finalized_, "cannot add documents after Finalize()");
  PHOCUS_CHECK(doc_lengths_.find(id) == doc_lengths_.end(),
               "duplicate document id");
  const std::vector<std::string> tokens = Tokenize(text, tokenizer_options_);
  doc_lengths_[id] = static_cast<std::uint32_t>(tokens.size());

  std::unordered_map<std::string, std::uint32_t> counts;
  for (const std::string& token : tokens) ++counts[token];
  for (const auto& [token, count] : counts) {
    postings_[token].push_back({id, count});
  }
}

void SearchEngine::Finalize() {
  PHOCUS_CHECK(!finalized_, "Finalize() called twice");
  double total = 0.0;
  for (const auto& [id, length] : doc_lengths_) {
    (void)id;
    total += length;
  }
  average_doc_length_ =
      doc_lengths_.empty() ? 0.0 : total / static_cast<double>(doc_lengths_.size());
  for (auto& [token, list] : postings_) {
    (void)token;
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
  }
  finalized_ = true;
}

std::vector<SearchEngine::Hit> SearchEngine::Search(const std::string& query,
                                                    std::size_t top_k) const {
  PHOCUS_CHECK(finalized_, "Search() before Finalize()");
  const std::vector<std::string> terms = Tokenize(query, tokenizer_options_);
  // Aggregate query-term frequencies first: each distinct term contributes
  // once (BM25 query-frequency saturation with k3 = 0, as in Lucene).
  // Scoring the raw token stream would double the weight of a repeated
  // term — "beach beach sunset" is still a query about beaches and sunsets.
  std::unordered_map<std::string, std::uint32_t> query_term_frequency;
  for (const std::string& term : terms) ++query_term_frequency[term];
  std::unordered_map<DocId, double> scores;
  const double n = static_cast<double>(doc_lengths_.size());
  for (const auto& [term, qtf] : query_term_frequency) {
    (void)qtf;
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const auto& list = it->second;
    const double df = static_cast<double>(list.size());
    // BM25+-style floor keeps idf positive for very common terms.
    const double idf = std::max(0.05, std::log((n - df + 0.5) / (df + 0.5) + 1.0));
    for (const Posting& posting : list) {
      const double tf = posting.term_frequency;
      const double doc_length = doc_lengths_.at(posting.doc);
      const double denom =
          tf + kK1 * (1.0 - kB + kB * doc_length /
                                     std::max(1e-9, average_doc_length_));
      scores[posting.doc] += idf * tf * (kK1 + 1.0) / denom;
    }
  }
  std::vector<Hit> hits;
  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) hits.push_back({doc, score});
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    return a.score != b.score ? a.score > b.score : a.doc < b.doc;
  });
  if (top_k > 0 && hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace phocus
