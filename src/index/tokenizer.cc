#include "index/tokenizer.h"

#include <array>
#include <cctype>

namespace phocus {

namespace {
constexpr std::array<std::string_view, 26> kStopwords = {
    "a",    "an",  "and", "are", "as",   "at",   "be",  "by",  "for",
    "from", "has", "he",  "in",  "is",   "it",   "its", "of",  "on",
    "or",   "that", "the", "to", "was",  "were", "will", "with"};
}  // namespace

bool IsStopword(std::string_view token) {
  for (std::string_view w : kStopwords) {
    if (w == token) return true;
  }
  return false;
}

std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      if (!options.drop_stopwords || !IsStopword(current)) {
        tokens.push_back(current);
      }
      current.clear();
    }
  };
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace phocus
