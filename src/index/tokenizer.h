#ifndef PHOCUS_INDEX_TOKENIZER_H_
#define PHOCUS_INDEX_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

/// \file tokenizer.h
/// Text tokenization for the internal search engine (§5.1 input mode 2:
/// "users provide queries ... and the subsets are computed via the PHOcus
/// search engine").

namespace phocus {

struct TokenizerOptions {
  bool drop_stopwords = true;
};

/// Lowercases, splits on non-alphanumeric characters, and (optionally)
/// removes a small English stopword list.
std::vector<std::string> Tokenize(std::string_view text,
                                  const TokenizerOptions& options = {});

/// True if the lowercase token is in the stopword list.
bool IsStopword(std::string_view token);

}  // namespace phocus

#endif  // PHOCUS_INDEX_TOKENIZER_H_
