#include "kernels/kernels.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kernels/table_impl.h"
#include "util/logging.h"

namespace phocus {
namespace kernels {

const KernelTable& ScalarTable() { return internal::ScalarTableImpl(); }

bool Avx2CompiledIn() {
#if PHOCUS_KERNELS_BUILD_AVX2
  return true;
#else
  return false;
#endif
}

namespace {

bool CpuHasAvx2() {
#if PHOCUS_KERNELS_BUILD_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace

const KernelTable* Avx2Table() {
#if PHOCUS_KERNELS_BUILD_AVX2
  if (CpuHasAvx2()) return &internal::Avx2TableImpl();
#endif
  return nullptr;
}

const KernelTable& ResolveTable(const char* env_value) {
  if (env_value == nullptr || env_value[0] == '\0') {
    const KernelTable* avx2 = Avx2Table();
    return avx2 != nullptr ? *avx2 : ScalarTable();
  }
  if (std::strcmp(env_value, "scalar") == 0) return ScalarTable();
  if (std::strcmp(env_value, "avx2") == 0) {
    const KernelTable* avx2 = Avx2Table();
    PHOCUS_CHECK(avx2 != nullptr,
                 "PHOCUS_KERNELS=avx2 but the AVX2 kernel build is "
                 "unavailable (not compiled in, or the CPU lacks AVX2/FMA)");
    return *avx2;
  }
  PHOCUS_CHECK(false, std::string("unknown PHOCUS_KERNELS value '") +
                          env_value + "' (expected 'scalar' or 'avx2')");
  return ScalarTable();  // unreachable
}

const KernelTable& Active() {
  // Resolved once per process: the dispatch decision (like the thread-pool
  // width) must not change mid-run, or mixed-mode reductions would break
  // the determinism contract.
  static const KernelTable& table = ResolveTable(std::getenv("PHOCUS_KERNELS"));
  return table;
}

const char* ActiveIsaName() { return Active().name; }

// ---------------------------------------------------------------------------
// Operation counters
// ---------------------------------------------------------------------------

namespace internal {

OpCountCells& Cells() {
  static OpCountCells cells;
  return cells;
}

}  // namespace internal

void SetOpCountingEnabled(bool enabled) {
  internal::Cells().enabled.store(enabled, std::memory_order_relaxed);
}

bool OpCountingEnabled() {
  return internal::Cells().enabled.load(std::memory_order_relaxed);
}

OpCounts SnapshotOpCounts() {
  internal::OpCountCells& cells = internal::Cells();
  OpCounts counts;
  counts.dot_elems = cells.dot_elems.load(std::memory_order_relaxed);
  counts.scale_elems = cells.scale_elems.load(std::memory_order_relaxed);
  counts.gain_elems = cells.gain_elems.load(std::memory_order_relaxed);
  counts.simhash_macs = cells.simhash_macs.load(std::memory_order_relaxed);
  counts.dct_blocks = cells.dct_blocks.load(std::memory_order_relaxed);
  counts.quant_blocks = cells.quant_blocks.load(std::memory_order_relaxed);
  counts.hamming_words = cells.hamming_words.load(std::memory_order_relaxed);
  return counts;
}

void ResetOpCounts() {
  internal::OpCountCells& cells = internal::Cells();
  cells.dot_elems.store(0, std::memory_order_relaxed);
  cells.scale_elems.store(0, std::memory_order_relaxed);
  cells.gain_elems.store(0, std::memory_order_relaxed);
  cells.simhash_macs.store(0, std::memory_order_relaxed);
  cells.dct_blocks.store(0, std::memory_order_relaxed);
  cells.quant_blocks.store(0, std::memory_order_relaxed);
  cells.hamming_words.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Shared DCT basis
// ---------------------------------------------------------------------------

namespace internal {

const DctTables& GetDctTables() {
  // Function-local static: thread-safe one-time init (size estimation runs
  // on the pool). Compiled in this ISA-flag-free TU so scalar and AVX2
  // builds share bit-identical constants.
  static const DctTables tables = [] {
    DctTables t;
    for (int k = 0; k < 8; ++k) {
      for (int n = 0; n < 8; ++n) {
        const float c =
            static_cast<float>(std::cos((2 * n + 1) * k * M_PI / 16.0));
        t.cos_kn[k][n] = c;
        t.cos_nk[n][k] = c;
      }
      t.alpha[k] = (k == 0) ? 0.353553391f : 0.5f;  // sqrt(1/8), sqrt(2/8)
    }
    return t;
  }();
  return tables;
}

}  // namespace internal

}  // namespace kernels
}  // namespace phocus
