#include "kernels/kernels.h"
#include "kernels/kernels_generic.h"
#include "kernels/table_impl.h"

/// \file kernels_avx2.cc
/// The AVX2+FMA kernel build. Compiled with -mavx2 -mfma (see
/// CMakeLists.txt); only ever *called* after a CPUID check in dispatch.cc.
///
/// Every reduction here reproduces the generic build's arithmetic
/// operation-for-operation (see the determinism contract in kernels.h):
/// element i accumulates into double lane i % 8, the low 4 floats of each
/// 8-wide chunk feed accumulator A (lanes 0-3) and the high 4 feed
/// accumulator B (lanes 4-7), tails continue scalar into the same lane
/// slots, and the final combine is the generic CombineLanes tree. FMA is
/// used only where the fused product is exactly representable (the double
/// product of two floats), so fusing cannot change the rounding sequence.

#if !defined(__AVX2__) || !defined(__FMA__)
#error "kernels_avx2.cc must be compiled with -mavx2 -mfma"
#endif

#include <immintrin.h>

namespace phocus {
namespace kernels {
namespace {

inline __m256d LowPd(__m256 v) {
  return _mm256_cvtps_pd(_mm256_castps256_ps128(v));
}

inline __m256d HighPd(__m256 v) {
  return _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

/// Spills the two 4-wide accumulators into the generic lane layout so the
/// scalar tail and CombineLanes finish the reduction bit-identically.
inline void SpillLanes(__m256d acc_a, __m256d acc_b, double lanes[8]) {
  _mm256_storeu_pd(lanes, acc_a);
  _mm256_storeu_pd(lanes + 4, acc_b);
}

double DotAvx2(const float* a, const float* b, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    // Exact double products: FMA == mul+add, one rounding either way.
    acc_a = _mm256_fmadd_pd(LowPd(va), LowPd(vb), acc_a);
    acc_b = _mm256_fmadd_pd(HighPd(va), HighPd(vb), acc_b);
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return generic::CombineLanes(lanes);
}

double SquaredNormAvx2(const float* a, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256d lo = LowPd(va);
    const __m256d hi = HighPd(va);
    acc_a = _mm256_fmadd_pd(lo, lo, acc_a);
    acc_b = _mm256_fmadd_pd(hi, hi, acc_b);
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < n; ++i) {
    const double v = static_cast<double>(a[i]);
    lanes[i % 8] += v * v;
  }
  return generic::CombineLanes(lanes);
}

double SquaredDistanceAvx2(const float* a, const float* b, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d dlo = _mm256_sub_pd(LowPd(va), LowPd(vb));
    const __m256d dhi = _mm256_sub_pd(HighPd(va), HighPd(vb));
    // d² is inexact — separate mul+add to match the generic two-rounding
    // sequence (no FMA).
    acc_a = _mm256_add_pd(acc_a, _mm256_mul_pd(dlo, dlo));
    acc_b = _mm256_add_pd(acc_b, _mm256_mul_pd(dhi, dhi));
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    lanes[i % 8] += d * d;
  }
  return generic::CombineLanes(lanes);
}

void ScaleInPlaceAvx2(float* a, std::size_t n, float s) {
  const __m256 vs = _mm256_set1_ps(s);
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (std::size_t i = main; i < n; ++i) a[i] *= s;
}

void ScaleIntoAvx2(float* dst, const float* src, std::size_t n, float s) {
  const __m256 vs = _mm256_set1_ps(s);
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(src + i), vs));
  }
  for (std::size_t i = main; i < n; ++i) dst[i] = src[i] * s;
}

double WeightedSumAvx2(const double* rel, const float* best, std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256 vb = _mm256_loadu_ps(best + i);
    // rel is a full-precision double — the product is inexact, so no FMA.
    acc_a = _mm256_add_pd(
        acc_a, _mm256_mul_pd(_mm256_loadu_pd(rel + i), LowPd(vb)));
    acc_b = _mm256_add_pd(
        acc_b, _mm256_mul_pd(_mm256_loadu_pd(rel + i + 4), HighPd(vb)));
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < n; ++i) {
    lanes[i % 8] += rel[i] * static_cast<double>(best[i]);
  }
  return generic::CombineLanes(lanes);
}

/// One 4-wide gain step: lane += (sim − best > 0) ? rel·(sim − best) : +0.
/// The masked-off lanes add +0.0, which never changes an accumulator
/// (lanes can never hold −0.0 — see kernels.h).
inline __m256d GainStep(__m256d acc, __m256d sim, __m256d best, __m256d rel) {
  const __m256d d = _mm256_sub_pd(sim, best);
  const __m256d mask = _mm256_cmp_pd(d, _mm256_setzero_pd(), _CMP_GT_OQ);
  return _mm256_add_pd(acc, _mm256_and_pd(_mm256_mul_pd(rel, d), mask));
}

double GainScanAvx2(const float* sim, const double* rel, const float* best,
                    std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256 vs = _mm256_loadu_ps(sim + i);
    const __m256 vb = _mm256_loadu_ps(best + i);
    acc_a = GainStep(acc_a, LowPd(vs), LowPd(vb), _mm256_loadu_pd(rel + i));
    acc_b =
        GainStep(acc_b, HighPd(vs), HighPd(vb), _mm256_loadu_pd(rel + i + 4));
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < n; ++i) {
    lanes[i % 8] += generic::GainTerm(sim[i], rel[i], best[i]);
  }
  return generic::CombineLanes(lanes);
}

double GainScanUniformAvx2(const double* rel, const float* best,
                           std::size_t n) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256 vb = _mm256_loadu_ps(best + i);
    acc_a = GainStep(acc_a, one, LowPd(vb), _mm256_loadu_pd(rel + i));
    acc_b = GainStep(acc_b, one, HighPd(vb), _mm256_loadu_pd(rel + i + 4));
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < n; ++i) {
    lanes[i % 8] += generic::GainTerm(1.0f, rel[i], best[i]);
  }
  return generic::CombineLanes(lanes);
}

double GainUpdateAvx2(const float* sim, const double* rel, float* best,
                      std::size_t n) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256 vs = _mm256_loadu_ps(sim + i);
    const __m256 vb = _mm256_loadu_ps(best + i);
    acc_a = GainStep(acc_a, LowPd(vs), LowPd(vb), _mm256_loadu_pd(rel + i));
    acc_b =
        GainStep(acc_b, HighPd(vs), HighPd(vb), _mm256_loadu_pd(rel + i + 4));
    // sim > best (float) ⟺ the double difference above is > 0, so this
    // raise uses exactly the gain mask's predicate.
    const __m256 raise = _mm256_cmp_ps(vs, vb, _CMP_GT_OQ);
    _mm256_storeu_ps(best + i, _mm256_blendv_ps(vb, vs, raise));
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < n; ++i) {
    lanes[i % 8] += generic::GainTerm(sim[i], rel[i], best[i]);
    if (sim[i] > best[i]) best[i] = sim[i];
  }
  return generic::CombineLanes(lanes);
}

double GainUpdateUniformAvx2(const double* rel, float* best, std::size_t n) {
  const __m256d one_pd = _mm256_set1_pd(1.0);
  const __m256 one_ps = _mm256_set1_ps(1.0f);
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t i = 0; i < main; i += 8) {
    const __m256 vb = _mm256_loadu_ps(best + i);
    acc_a = GainStep(acc_a, one_pd, LowPd(vb), _mm256_loadu_pd(rel + i));
    acc_b = GainStep(acc_b, one_pd, HighPd(vb), _mm256_loadu_pd(rel + i + 4));
    const __m256 raise = _mm256_cmp_ps(one_ps, vb, _CMP_GT_OQ);
    _mm256_storeu_ps(best + i, _mm256_blendv_ps(vb, one_ps, raise));
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < n; ++i) {
    lanes[i % 8] += generic::GainTerm(1.0f, rel[i], best[i]);
    if (1.0f > best[i]) best[i] = 1.0f;
  }
  return generic::CombineLanes(lanes);
}

double GainScanSparseAvx2(const std::uint32_t* idx, const float* val,
                          std::size_t n, const double* rel,
                          const float* best) {
  __m256d acc_a = _mm256_setzero_pd();
  __m256d acc_b = _mm256_setzero_pd();
  // All-ones gather masks with an explicit zero source: the plain
  // _mm256_i32gather_* intrinsics read _mm256_undefined_*() internally,
  // which gcc 12 flags as maybe-uninitialized under -Werror.
  const __m256 mask_ps = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
  const __m256d mask_pd = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const std::size_t main = n & ~static_cast<std::size_t>(7);
  for (std::size_t k = 0; k < main; k += 8) {
    const __m256i vidx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + k));
    const __m128i idx_lo = _mm256_castsi256_si128(vidx);
    const __m128i idx_hi = _mm256_extracti128_si256(vidx, 1);
    const __m256 vv = _mm256_loadu_ps(val + k);
    const __m256 vb = _mm256_mask_i32gather_ps(_mm256_setzero_ps(), best,
                                               vidx, mask_ps, 4);
    acc_a = GainStep(acc_a, LowPd(vv), LowPd(vb),
                     _mm256_mask_i32gather_pd(_mm256_setzero_pd(), rel,
                                              idx_lo, mask_pd, 8));
    acc_b = GainStep(acc_b, HighPd(vv), HighPd(vb),
                     _mm256_mask_i32gather_pd(_mm256_setzero_pd(), rel,
                                              idx_hi, mask_pd, 8));
  }
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t k = main; k < n; ++k) {
    const std::uint32_t j = idx[k];
    lanes[k % 8] += generic::GainTerm(val[k], rel[j], best[j]);
  }
  return generic::CombineLanes(lanes);
}

/// Finishes one hyperplane row: spill, scalar tail, combine, sign bit.
inline void FinishSimHashRow(__m256d acc_a, __m256d acc_b, const float* row,
                             const float* vec, std::size_t main,
                             std::size_t dim, std::size_t bit,
                             std::uint64_t* out_words) {
  double lanes[8];
  SpillLanes(acc_a, acc_b, lanes);
  for (std::size_t i = main; i < dim; ++i) {
    lanes[i % 8] +=
        static_cast<double>(row[i]) * static_cast<double>(vec[i]);
  }
  if (generic::CombineLanes(lanes) >= 0.0) {
    out_words[bit / 64] |= 1ULL << (bit % 64);
  }
}

void SimHashSignatureAvx2(const float* planes, std::size_t num_bits,
                          const float* vec, std::size_t dim,
                          std::uint64_t* out_words) {
  const std::size_t words = (num_bits + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) out_words[w] = 0;
  const std::size_t main = dim & ~static_cast<std::size_t>(7);

  // Four hyperplane rows per pass: the vector load + widen is amortized
  // across rows, and the eight accumulator chains keep the FMA pipes busy.
  std::size_t bit = 0;
  for (; bit + 4 <= num_bits; bit += 4) {
    const float* r0 = planes + (bit + 0) * dim;
    const float* r1 = planes + (bit + 1) * dim;
    const float* r2 = planes + (bit + 2) * dim;
    const float* r3 = planes + (bit + 3) * dim;
    __m256d a0 = _mm256_setzero_pd(), b0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd(), b1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd(), b2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd(), b3 = _mm256_setzero_pd();
    for (std::size_t i = 0; i < main; i += 8) {
      const __m256 v = _mm256_loadu_ps(vec + i);
      const __m256d vlo = LowPd(v);
      const __m256d vhi = HighPd(v);
      const __m256 p0 = _mm256_loadu_ps(r0 + i);
      a0 = _mm256_fmadd_pd(LowPd(p0), vlo, a0);
      b0 = _mm256_fmadd_pd(HighPd(p0), vhi, b0);
      const __m256 p1 = _mm256_loadu_ps(r1 + i);
      a1 = _mm256_fmadd_pd(LowPd(p1), vlo, a1);
      b1 = _mm256_fmadd_pd(HighPd(p1), vhi, b1);
      const __m256 p2 = _mm256_loadu_ps(r2 + i);
      a2 = _mm256_fmadd_pd(LowPd(p2), vlo, a2);
      b2 = _mm256_fmadd_pd(HighPd(p2), vhi, b2);
      const __m256 p3 = _mm256_loadu_ps(r3 + i);
      a3 = _mm256_fmadd_pd(LowPd(p3), vlo, a3);
      b3 = _mm256_fmadd_pd(HighPd(p3), vhi, b3);
    }
    FinishSimHashRow(a0, b0, r0, vec, main, dim, bit + 0, out_words);
    FinishSimHashRow(a1, b1, r1, vec, main, dim, bit + 1, out_words);
    FinishSimHashRow(a2, b2, r2, vec, main, dim, bit + 2, out_words);
    FinishSimHashRow(a3, b3, r3, vec, main, dim, bit + 3, out_words);
  }
  for (; bit < num_bits; ++bit) {
    if (DotAvx2(planes + bit * dim, vec, dim) >= 0.0) {
      out_words[bit / 64] |= 1ULL << (bit % 64);
    }
  }
}

void Dct8x8Avx2(const float* input, float* output) {
  const internal::DctTables& t = internal::GetDctTables();
  alignas(32) float temp[64];
  // Row pass, vectorized over the 8 output frequencies k. Each k lane runs
  // the generic build's per-k float mul+add sequence (no FMA — the float
  // products are inexact, fusing would change the rounding).
  for (int y = 0; y < 8; ++y) {
    __m256 acc = _mm256_setzero_ps();
    for (int n = 0; n < 8; ++n) {
      acc = _mm256_add_ps(acc,
                          _mm256_mul_ps(_mm256_broadcast_ss(input + y * 8 + n),
                                        _mm256_load_ps(t.cos_nk[n])));
    }
    _mm256_store_ps(temp + y * 8,
                    _mm256_mul_ps(_mm256_load_ps(t.alpha), acc));
  }
  // Column pass, vectorized over the 8 columns x.
  for (int k = 0; k < 8; ++k) {
    __m256 acc = _mm256_setzero_ps();
    for (int n = 0; n < 8; ++n) {
      acc = _mm256_add_ps(
          acc, _mm256_mul_ps(_mm256_load_ps(temp + n * 8),
                             _mm256_broadcast_ss(&t.cos_kn[k][n])));
    }
    _mm256_storeu_ps(output + k * 8,
                     _mm256_mul_ps(_mm256_broadcast_ss(&t.alpha[k]), acc));
  }
}

void QuantizeBlockAvx2(const float* dct, const float* qtab,
                       std::int32_t* out) {
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 neg_half = _mm256_set1_ps(-0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  for (int i = 0; i < 64; i += 8) {
    const __m256 q =
        _mm256_div_ps(_mm256_loadu_ps(dct + i), _mm256_loadu_ps(qtab + i));
    // Exact lround (round half away from zero): trunc + exact fraction,
    // then a ±1 adjustment where |frac| ≥ ½. The naive floor(|x| + 0.5)
    // trick is wrong near .5-ulp boundaries (e.g. 0.49999997f), this isn't.
    const __m256 tr =
        _mm256_round_ps(q, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __m256 frac = _mm256_sub_ps(q, tr);  // exact by Sterbenz
    const __m256 up = _mm256_and_ps(_mm256_cmp_ps(frac, half, _CMP_GE_OQ),
                                    one);
    const __m256 down = _mm256_and_ps(
        _mm256_cmp_ps(frac, neg_half, _CMP_LE_OQ), one);
    const __m256 rounded =
        _mm256_add_ps(tr, _mm256_sub_ps(up, down));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_cvtps_epi32(rounded));
  }
}

}  // namespace

namespace internal {

const KernelTable& Avx2TableImpl() {
  static const KernelTable table = {
      "avx2",
      DotAvx2,
      SquaredNormAvx2,
      SquaredDistanceAvx2,
      ScaleInPlaceAvx2,
      ScaleIntoAvx2,
      WeightedSumAvx2,
      GainScanAvx2,
      GainScanUniformAvx2,
      GainUpdateAvx2,
      GainUpdateUniformAvx2,
      GainScanSparseAvx2,
      SimHashSignatureAvx2,
      Dct8x8Avx2,
      QuantizeBlockAvx2,
      // Signature words are few (1-4); the scalar XOR-popcount is already
      // optimal and exact, so both tables share the generic integer path.
      generic::HammingImpl,
  };
  return table;
}

}  // namespace internal
}  // namespace kernels
}  // namespace phocus
