#ifndef PHOCUS_KERNELS_KERNELS_H_
#define PHOCUS_KERNELS_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

/// \file kernels.h
/// SIMD kernel layer: contiguous `(ptr, len)` primitives behind the four
/// compute-bound paths of the pipeline — embedding dot/cosine reductions,
/// SimHash hyperplane signatures, the objective evaluator's best-sim gain
/// scans, and the 8×8 forward DCT + quantization of the JPEG size
/// estimator.
///
/// ## Dispatch
///
/// Two implementations exist: a portable scalar build (always compiled)
/// and an AVX2+FMA build (compiled when the toolchain supports `-mavx2`,
/// used when CPUID reports AVX2+FMA at runtime). `Active()` resolves the
/// table once per process, honoring the `PHOCUS_KERNELS` environment
/// variable:
///
///   PHOCUS_KERNELS=scalar   force the portable build
///   PHOCUS_KERNELS=avx2     force AVX2 (CheckFailure if unavailable)
///   unset / ""              best available
///
/// ## Determinism contract
///
/// Every float reduction uses a fixed-order 8-lane blocked accumulation:
/// element `i` accumulates into lane `i % 8` (in doubles), and the eight
/// lanes are combined with the fixed tree
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` — the exact sequence the AVX2
/// build performs with two 4-wide double accumulators. The scalar build
/// replicates that order operation-for-operation, so **scalar and AVX2
/// results are bit-identical**, not merely close:
///
///   - `Dot`/`SquaredNorm`: the double product of two floats is exact
///     (24-bit mantissas), so the AVX2 FMA rounds exactly once — the same
///     single rounding as the scalar `acc += double(a) * double(b)`.
///   - gain scans / `SquaredDistance`: the AVX2 build deliberately uses
///     separate multiply + add (no FMA), matching the scalar two-rounding
///     sequence per lane.
///   - DCT/quantization: per-lane multiply/add in float, no FMA, and an
///     exact `lround` (round-half-away-from-zero) emulation.
///
/// A consequence the determinism tests rely on: a plan computed under
/// `PHOCUS_KERNELS=scalar` is byte-identical to one computed under
/// `PHOCUS_KERNELS=avx2`, on any thread count.
///
/// ## Operation counters
///
/// The inline wrappers below optionally maintain machine-independent
/// element counters (one relaxed atomic add per call, gated behind a plain
/// bool so production paths pay a predictable branch only). The perf wall
/// (`bench/bench_kernels.cc`, `kernels_perf_smoke`) enables them around a
/// fixed fixture and enforces hard bounds: the counts depend only on the
/// call sequence, never on ISA, threads, or machine speed.

namespace phocus {
namespace kernels {

// ---------------------------------------------------------------------------
// Kernel table
// ---------------------------------------------------------------------------

/// One implementation of every kernel. All pointers are non-null.
/// `n` is an element count; buffers may be arbitrarily aligned (kernels use
/// unaligned loads) but must not overlap unless stated.
struct KernelTable {
  const char* name;  ///< "scalar" or "avx2"

  /// Σ a[i]·b[i] in blocked double accumulation.
  double (*dot)(const float* a, const float* b, std::size_t n);
  /// Σ a[i]² in blocked double accumulation.
  double (*squared_norm)(const float* a, std::size_t n);
  /// Σ (a[i]−b[i])² in blocked double accumulation.
  double (*squared_distance)(const float* a, const float* b, std::size_t n);
  /// a[i] *= s.
  void (*scale_inplace)(float* a, std::size_t n, float s);
  /// dst[i] = src[i] * s (dst must not overlap src).
  void (*scale_into)(float* dst, const float* src, std::size_t n, float s);
  /// Σ rel[i]·best[i] (relevance is double, best-sim is float).
  double (*weighted_sum)(const double* rel, const float* best, std::size_t n);

  /// Gain scans over a best-sim arena slice (the objective's inner loop).
  /// Per element: d = double(sim[i]) − double(best[i]);
  /// lane += (d > 0) ? rel[i]·d : 0. `gain_update_*` additionally raises
  /// best[i] to sim[i] where d > 0. `*_uniform` variants take sim ≡ 1.
  double (*gain_scan)(const float* sim, const double* rel, const float* best,
                      std::size_t n);
  double (*gain_scan_uniform)(const double* rel, const float* best,
                              std::size_t n);
  double (*gain_update)(const float* sim, const double* rel, float* best,
                        std::size_t n);
  double (*gain_update_uniform)(const double* rel, float* best, std::size_t n);
  /// Sparse (CSR row) gain scan: element k contributes with
  /// sim = val[k], rel = rel[idx[k]], best = best[idx[k]].
  double (*gain_scan_sparse)(const std::uint32_t* idx, const float* val,
                             std::size_t n, const double* rel,
                             const float* best);

  /// SimHash signature: bit b of `out_words` (packed little-endian, word
  /// b/64 bit b%64) is set iff the blocked dot of hyperplane row b
  /// (`planes + b·dim`) with `vec` is ≥ 0. Zeroes all
  /// `(num_bits + 63) / 64` output words first.
  void (*simhash_signature)(const float* planes, std::size_t num_bits,
                            const float* vec, std::size_t dim,
                            std::uint64_t* out_words);

  /// Separable orthonormal 8×8 forward DCT (row pass then column pass,
  /// matching the historical scalar loop order exactly).
  void (*dct8x8)(const float* input, float* output);
  /// out[i] = lround(dct[i] / qtab[i]) — float division, exact
  /// round-half-away-from-zero.
  void (*quantize_block)(const float* dct, const float* qtab,
                         std::int32_t* out);

  /// Popcount of a XOR b over `words` 64-bit words (signature Hamming
  /// distance). Integer path: exact by construction.
  int (*hamming)(const std::uint64_t* a, const std::uint64_t* b,
                 std::size_t words);
};

/// The portable build (always available).
const KernelTable& ScalarTable();

/// The AVX2+FMA build, or nullptr when it is not compiled in or the CPU
/// does not support it.
const KernelTable* Avx2Table();

/// True when the AVX2 build was compiled into this binary (independent of
/// what the CPU supports).
bool Avx2CompiledIn();

/// The table selected for this process (resolved once; see file comment).
/// Throws CheckFailure if PHOCUS_KERNELS names an unavailable or unknown
/// implementation.
const KernelTable& Active();

/// Name of the active table ("scalar"/"avx2") — stamped into bench JSON.
const char* ActiveIsaName();

/// Pure resolver behind Active(): maps a PHOCUS_KERNELS value (nullptr =
/// unset) to a table. Exposed so tests can sweep values without forking.
const KernelTable& ResolveTable(const char* env_value);

// ---------------------------------------------------------------------------
// Operation counters
// ---------------------------------------------------------------------------

/// Machine-independent operation counts accumulated by the wrappers below
/// while counting is enabled. All units are elements processed (for
/// simhash: hyperplane-element multiply-accumulates, i.e. num_bits × dim
/// per signature; for DCT/quantize: 64-coefficient blocks; for hamming:
/// 64-bit words).
struct OpCounts {
  std::uint64_t dot_elems = 0;      ///< dot + norms + distance + weighted_sum
  std::uint64_t scale_elems = 0;    ///< scale_inplace + scale_into
  std::uint64_t gain_elems = 0;     ///< all gain scan/update variants
  std::uint64_t simhash_macs = 0;   ///< signature multiply-accumulates
  std::uint64_t dct_blocks = 0;     ///< forward DCT blocks
  std::uint64_t quant_blocks = 0;   ///< quantized blocks
  std::uint64_t hamming_words = 0;  ///< XOR-popcount words
};

/// Enables/disables counting (off by default; benches and the perf smoke
/// turn it on around their fixtures).
void SetOpCountingEnabled(bool enabled);
bool OpCountingEnabled();

/// Snapshot of the counts accumulated since the last Reset.
OpCounts SnapshotOpCounts();
void ResetOpCounts();

namespace internal {

struct OpCountCells {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> dot_elems{0};
  std::atomic<std::uint64_t> scale_elems{0};
  std::atomic<std::uint64_t> gain_elems{0};
  std::atomic<std::uint64_t> simhash_macs{0};
  std::atomic<std::uint64_t> dct_blocks{0};
  std::atomic<std::uint64_t> quant_blocks{0};
  std::atomic<std::uint64_t> hamming_words{0};
};

OpCountCells& Cells();

inline void Count(std::atomic<std::uint64_t>& cell, std::uint64_t n) {
  if (Cells().enabled.load(std::memory_order_relaxed)) {
    cell.fetch_add(n, std::memory_order_relaxed);
  }
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Counting wrappers (the call sites the pipeline uses)
// ---------------------------------------------------------------------------

inline double Dot(const float* a, const float* b, std::size_t n) {
  internal::Count(internal::Cells().dot_elems, n);
  return Active().dot(a, b, n);
}

inline double SquaredNorm(const float* a, std::size_t n) {
  internal::Count(internal::Cells().dot_elems, n);
  return Active().squared_norm(a, n);
}

inline double SquaredDistance(const float* a, const float* b, std::size_t n) {
  internal::Count(internal::Cells().dot_elems, n);
  return Active().squared_distance(a, b, n);
}

inline void ScaleInPlace(float* a, std::size_t n, float s) {
  internal::Count(internal::Cells().scale_elems, n);
  Active().scale_inplace(a, n, s);
}

inline void ScaleInto(float* dst, const float* src, std::size_t n, float s) {
  internal::Count(internal::Cells().scale_elems, n);
  Active().scale_into(dst, src, n, s);
}

inline double WeightedSum(const double* rel, const float* best,
                          std::size_t n) {
  internal::Count(internal::Cells().dot_elems, n);
  return Active().weighted_sum(rel, best, n);
}

inline double GainScan(const float* sim, const double* rel, const float* best,
                       std::size_t n) {
  internal::Count(internal::Cells().gain_elems, n);
  return Active().gain_scan(sim, rel, best, n);
}

inline double GainScanUniform(const double* rel, const float* best,
                              std::size_t n) {
  internal::Count(internal::Cells().gain_elems, n);
  return Active().gain_scan_uniform(rel, best, n);
}

inline double GainUpdate(const float* sim, const double* rel, float* best,
                         std::size_t n) {
  internal::Count(internal::Cells().gain_elems, n);
  return Active().gain_update(sim, rel, best, n);
}

inline double GainUpdateUniform(const double* rel, float* best,
                                std::size_t n) {
  internal::Count(internal::Cells().gain_elems, n);
  return Active().gain_update_uniform(rel, best, n);
}

inline double GainScanSparse(const std::uint32_t* idx, const float* val,
                             std::size_t n, const double* rel,
                             const float* best) {
  internal::Count(internal::Cells().gain_elems, n);
  return Active().gain_scan_sparse(idx, val, n, rel, best);
}

inline void SimHashSignature(const float* planes, std::size_t num_bits,
                             const float* vec, std::size_t dim,
                             std::uint64_t* out_words) {
  internal::Count(internal::Cells().simhash_macs,
                  static_cast<std::uint64_t>(num_bits) * dim);
  Active().simhash_signature(planes, num_bits, vec, dim, out_words);
}

inline void ForwardDct8x8(const float* input, float* output) {
  internal::Count(internal::Cells().dct_blocks, 1);
  Active().dct8x8(input, output);
}

inline void QuantizeBlock8x8(const float* dct, const float* qtab,
                             std::int32_t* out) {
  internal::Count(internal::Cells().quant_blocks, 1);
  Active().quantize_block(dct, qtab, out);
}

inline int Hamming(const std::uint64_t* a, const std::uint64_t* b,
                   std::size_t words) {
  internal::Count(internal::Cells().hamming_words, words);
  return Active().hamming(a, b, words);
}

}  // namespace kernels
}  // namespace phocus

#endif  // PHOCUS_KERNELS_KERNELS_H_
