#ifndef PHOCUS_KERNELS_TABLE_IMPL_H_
#define PHOCUS_KERNELS_TABLE_IMPL_H_

#include "kernels/kernels.h"

/// \file table_impl.h
/// Internal: wiring between the dispatch translation unit and the per-ISA
/// implementation translation units.

namespace phocus {
namespace kernels {
namespace internal {

/// Defined in kernels_scalar.cc.
const KernelTable& ScalarTableImpl();

#if PHOCUS_KERNELS_BUILD_AVX2
/// Defined in kernels_avx2.cc (only compiled when the toolchain supports
/// -mavx2). Callable regardless of CPU — callers gate on CPUID.
const KernelTable& Avx2TableImpl();
#endif

/// Shared DCT basis constants (defined in dispatch.cc, which is compiled
/// without ISA flags, so both builds read the same values). `cos_kn[k][n]`
/// is the DCT-II basis cos((2n+1)kπ/16); `cos_nk` is its transpose for the
/// AVX2 row pass; `alpha` the orthonormal scale factors.
struct DctTables {
  alignas(32) float cos_kn[8][8];
  alignas(32) float cos_nk[8][8];
  alignas(32) float alpha[8];
};

const DctTables& GetDctTables();

}  // namespace internal
}  // namespace kernels
}  // namespace phocus

#endif  // PHOCUS_KERNELS_TABLE_IMPL_H_
