#ifndef PHOCUS_KERNELS_KERNELS_GENERIC_H_
#define PHOCUS_KERNELS_KERNELS_GENERIC_H_

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

/// \file kernels_generic.h
/// Internal: the portable blocked implementations of every kernel, written
/// to mirror the AVX2 instruction sequence operation-for-operation (see the
/// determinism contract in kernels.h). Everything here is `static` —
/// deliberately internal linkage — so the AVX2 translation unit (compiled
/// with -mavx2) gets its own private copy for tails/short inputs instead of
/// an ODR-merged definition that might carry AVX2 codegen into the portable
/// build.

namespace phocus {
namespace kernels {
namespace generic {

/// Combines the 8 accumulator lanes with the fixed tree the AVX2 build
/// performs: lanewise accA+accB (l+4), then 128-bit halves (+2), then the
/// final pair. Element i always accumulates into lane i % 8.
static inline double CombineLanes(const double lanes[8]) {
  const double s0 = lanes[0] + lanes[4];
  const double s1 = lanes[1] + lanes[5];
  const double s2 = lanes[2] + lanes[6];
  const double s3 = lanes[3] + lanes[7];
  return (s0 + s2) + (s1 + s3);
}

static inline double DotImpl(const float* a, const float* b, std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    // double(a)·double(b) is exact (24-bit mantissas), so this mul+add
    // rounds once — identical to the AVX2 build's fused multiply-add.
    lanes[i % 8] += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return CombineLanes(lanes);
}

static inline double SquaredNormImpl(const float* a, std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(a[i]);
    lanes[i % 8] += v * v;
  }
  return CombineLanes(lanes);
}

static inline double SquaredDistanceImpl(const float* a, const float* b,
                                         std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    // d² is not exact, so the AVX2 build uses separate mul+add here (no
    // FMA) to match this two-rounding sequence.
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    lanes[i % 8] += d * d;
  }
  return CombineLanes(lanes);
}

static inline void ScaleInPlaceImpl(float* a, std::size_t n, float s) {
  for (std::size_t i = 0; i < n; ++i) a[i] *= s;
}

static inline void ScaleIntoImpl(float* dst, const float* src, std::size_t n,
                                 float s) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] * s;
}

static inline double WeightedSumImpl(const double* rel, const float* best,
                                     std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i % 8] += rel[i] * static_cast<double>(best[i]);
  }
  return CombineLanes(lanes);
}

/// One gain element: d = sim − best (exact iff representable; identically
/// rounded on both builds), contributing rel·d where sim > best. The
/// explicit `: 0.0` arm mirrors the AVX2 masked add (adding +0.0 never
/// changes an accumulator — lanes can never hold −0.0, see kernels.h).
static inline double GainTerm(float sim, double rel, float best) {
  const double d = static_cast<double>(sim) - static_cast<double>(best);
  return d > 0.0 ? rel * d : 0.0;
}

static inline double GainScanImpl(const float* sim, const double* rel,
                                  const float* best, std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i % 8] += GainTerm(sim[i], rel[i], best[i]);
  }
  return CombineLanes(lanes);
}

static inline double GainScanUniformImpl(const double* rel, const float* best,
                                         std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i % 8] += GainTerm(1.0f, rel[i], best[i]);
  }
  return CombineLanes(lanes);
}

static inline double GainUpdateImpl(const float* sim, const double* rel,
                                    float* best, std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i % 8] += GainTerm(sim[i], rel[i], best[i]);
    // sim > best ⟺ d > 0 (an IEEE difference is zero only for equal
    // operands), so this matches the gain mask exactly.
    if (sim[i] > best[i]) best[i] = sim[i];
  }
  return CombineLanes(lanes);
}

static inline double GainUpdateUniformImpl(const double* rel, float* best,
                                           std::size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    lanes[i % 8] += GainTerm(1.0f, rel[i], best[i]);
    if (1.0f > best[i]) best[i] = 1.0f;
  }
  return CombineLanes(lanes);
}

static inline double GainScanSparseImpl(const std::uint32_t* idx,
                                        const float* val, std::size_t n,
                                        const double* rel, const float* best) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t j = idx[k];
    lanes[k % 8] += GainTerm(val[k], rel[j], best[j]);
  }
  return CombineLanes(lanes);
}

static inline void SimHashSignatureImpl(const float* planes,
                                        std::size_t num_bits, const float* vec,
                                        std::size_t dim,
                                        std::uint64_t* out_words) {
  const std::size_t words = (num_bits + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) out_words[w] = 0;
  for (std::size_t bit = 0; bit < num_bits; ++bit) {
    if (DotImpl(planes + bit * dim, vec, dim) >= 0.0) {
      out_words[bit / 64] |= 1ULL << (bit % 64);
    }
  }
}

/// Quantize one coefficient: float division, then exact
/// round-half-away-from-zero (std::lround semantics). The AVX2 build
/// emulates the same rounding from trunc + exact fraction.
static inline std::int32_t QuantizeCoeff(float dct, float q) {
  return static_cast<std::int32_t>(std::lround(dct / q));
}

static inline void QuantizeBlockImpl(const float* dct, const float* qtab,
                                     std::int32_t* out) {
  for (int i = 0; i < 64; ++i) out[i] = QuantizeCoeff(dct[i], qtab[i]);
}

static inline int HammingImpl(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) {
  int distance = 0;
  for (std::size_t i = 0; i < words; ++i) {
    distance += std::popcount(a[i] ^ b[i]);
  }
  return distance;
}

}  // namespace generic
}  // namespace kernels
}  // namespace phocus

#endif  // PHOCUS_KERNELS_KERNELS_GENERIC_H_
