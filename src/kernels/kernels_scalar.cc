#include "kernels/kernels.h"
#include "kernels/kernels_generic.h"
#include "kernels/table_impl.h"

/// \file kernels_scalar.cc
/// The portable kernel build: the generic blocked implementations bound
/// into a KernelTable. Compiled without ISA flags and (see CMakeLists.txt)
/// without auto-vectorization, so the perf wall's scalar baseline measures
/// genuine scalar throughput on every machine.

namespace phocus {
namespace kernels {
namespace {

void Dct8x8Scalar(const float* input, float* output) {
  const internal::DctTables& t = internal::GetDctTables();
  float temp[64];
  // Rows: temp[y][k] = alpha_k · Σ_n input[y][n] · cos[k][n].
  for (int y = 0; y < 8; ++y) {
    for (int k = 0; k < 8; ++k) {
      float acc = 0.0f;
      for (int n = 0; n < 8; ++n) acc += input[y * 8 + n] * t.cos_kn[k][n];
      temp[y * 8 + k] = t.alpha[k] * acc;
    }
  }
  // Columns: output[k][x] = alpha_k · Σ_n temp[n][x] · cos[k][n].
  for (int x = 0; x < 8; ++x) {
    for (int k = 0; k < 8; ++k) {
      float acc = 0.0f;
      for (int n = 0; n < 8; ++n) acc += temp[n * 8 + x] * t.cos_kn[k][n];
      output[k * 8 + x] = t.alpha[k] * acc;
    }
  }
}

}  // namespace

namespace internal {

const KernelTable& ScalarTableImpl() {
  static const KernelTable table = {
      "scalar",
      generic::DotImpl,
      generic::SquaredNormImpl,
      generic::SquaredDistanceImpl,
      generic::ScaleInPlaceImpl,
      generic::ScaleIntoImpl,
      generic::WeightedSumImpl,
      generic::GainScanImpl,
      generic::GainScanUniformImpl,
      generic::GainUpdateImpl,
      generic::GainUpdateUniformImpl,
      generic::GainScanSparseImpl,
      generic::SimHashSignatureImpl,
      Dct8x8Scalar,
      generic::QuantizeBlockImpl,
      generic::HammingImpl,
  };
  return table;
}

}  // namespace internal
}  // namespace kernels
}  // namespace phocus
