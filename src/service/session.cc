#include "service/session.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "datagen/corpus_io.h"
#include "datagen/openimages.h"
#include "phocus/explain.h"
#include "phocus/representation.h"
#include "service/protocol.h"
#include "storage/archiver.h"
#include "storage/vault.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/strings.h"

namespace phocus {
namespace service {

Session::Session(std::string id, Corpus corpus)
    : id_(std::move(id)), corpus_(std::move(corpus)) {}

Json Session::Describe() {
  std::lock_guard<std::mutex> lock(mutex_);
  Json out = Json::Object();
  out.Set("session", id_);
  out.Set("corpus", corpus_.name);
  out.Set("num_photos", corpus_.num_photos());
  out.Set("total_bytes", corpus_.TotalBytes());
  out.Set("num_subsets", corpus_.subsets.size());
  out.Set("num_required", corpus_.required.size());
  return out;
}

ArchivePlan Session::SolveLocked(const ArchiveOptions& options) {
  if (system_ == nullptr) {
    system_ = std::make_unique<PhocusSystem>(corpus_);
  }
  return system_->PlanArchive(options);
}

std::string Session::FingerprintLocked() {
  if (fingerprint_.empty()) {
    fingerprint_ = StrFormat(
        "%016llx",
        static_cast<unsigned long long>(Fnv64(EncodeCorpus(corpus_))));
  }
  return fingerprint_;
}

void Session::InvalidateLocked() {
  system_.reset();
  fingerprint_.clear();
}

std::string Session::Fingerprint() {
  std::lock_guard<std::mutex> lock(mutex_);
  return FingerprintLocked();
}

Session::PlanOutcome Session::Plan(const ArchiveOptions& options,
                                   PlanCache* cache) {
  std::lock_guard<std::mutex> lock(mutex_);
  PHOCUS_CHECK(options.budget > 0, "plan needs a positive budget");
  const std::string key =
      FingerprintLocked() + "|" + CanonicalOptionsKey(options);
  PlanOutcome outcome;
  {
    // Under phocusd's per-request trace sink these become children of the
    // service.request span (docs/OBSERVABILITY.md).
    telemetry::TraceSpan span("service.session.cache_lookup");
    if (cache != nullptr) {
      outcome.plan = cache->Lookup(key);
    }
    span.SetAttribute("hit", outcome.plan != nullptr ? "true" : "false");
  }
  if (outcome.plan != nullptr) {
    outcome.from_cache = true;
  } else {
    telemetry::TraceSpan span("service.session.solve");
    outcome.plan = std::make_shared<const ArchivePlan>(SolveLocked(options));
    if (cache != nullptr) cache->Insert(key, outcome.plan);
  }
  last_plan_ = outcome.plan;
  last_options_ = options;
  has_plan_ = true;
  return outcome;
}

namespace {

/// Deterministic arrivals: a fresh mini-corpus whose subsets are remapped
/// into the appended id space (they only reference the new photos).
Corpus GenerateArrivals(std::size_t count, std::uint64_t seed,
                        PhotoId offset) {
  OpenImagesOptions generate;
  generate.num_photos = count;
  generate.seed = seed;
  Corpus arrivals = GenerateOpenImagesCorpus(generate);
  for (SubsetSpec& spec : arrivals.subsets) {
    spec.name = StrFormat("%s@%u", spec.name.c_str(), offset);
    for (PhotoId& member : spec.members) member += offset;
  }
  return arrivals;
}

}  // namespace

StreamingArchiver& Session::StreamerLocked(const ArchiveOptions& options) {
  if (streamer_ == nullptr) {
    // No incremental state yet: seed it with the request's options, or fall
    // back to the options of the last full plan.
    ArchiveOptions initial = options;
    if (initial.budget == 0 && has_plan_) initial = last_options_;
    PHOCUS_CHECK(initial.budget > 0,
                 "first update needs a budget (pass one or plan first)");
    StreamingOptions streaming;
    streaming.incremental.archive = initial;
    streamer_ = std::make_unique<StreamingArchiver>(streaming);
    streamer_->Initialize(corpus_);
    last_options_ = initial;
  }
  return *streamer_;
}

Session::UpdateOutcome Session::AddGeneratedPhotos(
    std::size_t count, std::uint64_t seed, const ArchiveOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  PHOCUS_CHECK(count > 0, "update needs count > 0");
  UpdateOutcome outcome;
  StreamingArchiver& streamer = StreamerLocked(options);
  // A synchronous update must see every queued streaming batch absorbed
  // first: arrivals are numbered in the post-absorb id space, so the queue
  // is flushed before computing this update's offset.
  if (streamer.pending_photos() > 0) streamer.Flush();

  Corpus arrivals =
      GenerateArrivals(count, seed,
                       static_cast<PhotoId>(streamer.corpus().num_photos()));
  streamer.archiver().AddPhotos(std::move(arrivals.photos),
                                std::move(arrivals.subsets), {},
                                &outcome.stats);
  corpus_ = streamer.corpus();
  InvalidateLocked();
  outcome.plan = std::make_shared<const ArchivePlan>(streamer.plan());
  last_plan_ = outcome.plan;
  has_plan_ = true;
  return outcome;
}

Session::UpdateOutcome Session::SetBudget(Cost budget,
                                          const ArchiveOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  PHOCUS_CHECK(budget > 0, "budget must be positive");
  UpdateOutcome outcome;
  if (streamer_ == nullptr) {
    StreamingOptions streaming;
    streaming.incremental.archive = options;
    streaming.incremental.archive.budget = budget;
    streamer_ = std::make_unique<StreamingArchiver>(streaming);
    streamer_->Initialize(corpus_);
  } else {
    if (streamer_->pending_photos() > 0) streamer_->Flush();
    streamer_->archiver().SetBudget(budget, &outcome.stats);
    corpus_ = streamer_->corpus();
    InvalidateLocked();
  }
  last_options_.budget = budget;
  outcome.plan = std::make_shared<const ArchivePlan>(streamer_->plan());
  last_plan_ = outcome.plan;
  has_plan_ = true;
  return outcome;
}

void Session::AbsorbStreamerStateLocked(const IngestOutcome& outcome,
                                        IngestResult* result) {
  if (outcome.absorbed) {
    corpus_ = streamer_->corpus();
    InvalidateLocked();
  }
  if (outcome.replanned) {
    result->plan = std::make_shared<const ArchivePlan>(streamer_->plan());
    last_plan_ = result->plan;
    has_plan_ = true;
  }
  result->num_photos = corpus_.num_photos();
  result->replans = streamer_->replans();
  result->replans_skipped = streamer_->replans_skipped();
  result->drift_evals = streamer_->drift_evals();
}

Session::IngestResult Session::Ingest(std::size_t count, std::uint64_t seed,
                                      const ArchiveOptions& options,
                                      const IngestConfig& config,
                                      std::function<double()> now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  PHOCUS_CHECK(count > 0, "ingest needs count > 0");
  StreamingArchiver& streamer = StreamerLocked(options);
  StreamingOptions policy;
  policy.epsilon = config.epsilon;
  policy.max_staleness_ms = config.max_staleness_ms;
  policy.batch_photos = config.batch_photos;
  policy.queue_photos = config.queue_photos;
  policy.replan_every_batch = config.replan_every_batch;
  policy.budget_fraction = config.budget_fraction;
  policy.now_ms = std::move(now_ms);
  streamer.set_policy(policy);

  // Queued batches are numbered in the post-absorb id space: this batch's
  // first photo lands after everything absorbed plus everything queued.
  const PhotoId offset = static_cast<PhotoId>(streamer.corpus().num_photos() +
                                              streamer.pending_photos());
  Corpus arrivals = GenerateArrivals(count, seed, offset);
  IngestBatch batch;
  batch.photos = std::move(arrivals.photos);
  batch.subsets = std::move(arrivals.subsets);
  if (config.backfill_members > 0 && offset > 0) {
    // Out-of-order metadata: an old album's page arrives only now, naming
    // photos ingested long ago. Deterministic from the seed.
    SubsetSpec backfill;
    backfill.name = StrFormat("backfill@%u", offset);
    const std::size_t members =
        std::min<std::size_t>(config.backfill_members, offset);
    std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    for (std::size_t i = 0; i < members; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      backfill.members.push_back(static_cast<PhotoId>((state >> 33) % offset));
    }
    std::sort(backfill.members.begin(), backfill.members.end());
    backfill.members.erase(
        std::unique(backfill.members.begin(), backfill.members.end()),
        backfill.members.end());
    batch.subsets.push_back(std::move(backfill));
  }

  IngestResult result;
  result.outcome = streamer.Ingest(std::move(batch));
  AbsorbStreamerStateLocked(result.outcome, &result);
  return result;
}

Session::IngestResult Session::IngestFlush() {
  std::lock_guard<std::mutex> lock(mutex_);
  PHOCUS_CHECK(streamer_ != nullptr,
               "ingest_flush before any ingest/update on session " + id_);
  IngestResult result;
  result.outcome = streamer_->Flush();
  AbsorbStreamerStateLocked(result.outcome, &result);
  return result;
}

Json Session::Coverage(std::size_t top_k) {
  std::lock_guard<std::mutex> lock(mutex_);
  PHOCUS_CHECK(has_plan_, "no plan yet for session " + id_);
  Json rows = Json::Array();
  const std::vector<SubsetCoverage>& coverage = last_plan_->subset_coverage;
  const std::size_t limit =
      top_k == 0 ? coverage.size() : std::min(top_k, coverage.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const SubsetCoverage& row = coverage[i];
    Json entry = Json::Object();
    entry.Set("subset", row.name);
    entry.Set("weight", row.weight);
    entry.Set("coverage", row.coverage);
    entry.Set("retained_members", row.retained_members);
    entry.Set("total_members", row.total_members);
    rows.Append(std::move(entry));
  }
  Json out = Json::Object();
  out.Set("session", id_);
  out.Set("rows", std::move(rows));
  return out;
}

Json Session::Explain(PhotoId photo) {
  std::lock_guard<std::mutex> lock(mutex_);
  PHOCUS_CHECK(has_plan_, "no plan yet for session " + id_);
  PHOCUS_CHECK(photo < corpus_.num_photos(), "photo id out of range");
  const ParInstance instance = BuildInstance(corpus_, last_options_.budget,
                                             last_options_.representation);
  const bool retained = std::binary_search(last_plan_->retained.begin(),
                                           last_plan_->retained.end(), photo);
  Json out = Json::Object();
  out.Set("session", id_);
  out.Set("photo", photo);
  out.Set("retained", retained);
  if (retained) {
    out.Set("text", DescribeRetained(
                        ExplainRetained(instance, last_plan_->retained, photo)));
  } else {
    out.Set("text", DescribeArchived(
                        ExplainArchived(instance, last_plan_->retained, photo)));
  }
  return out;
}

Json Session::ArchiveToVault(const std::string& directory, int render_size) {
  std::lock_guard<std::mutex> lock(mutex_);
  PHOCUS_CHECK(has_plan_, "no plan yet for session " + id_);
  std::filesystem::create_directories(directory);
  ArchiveVault vault(directory);
  const ArchiveToVaultReport report =
      ArchivePlanToVault(corpus_, *last_plan_, vault, render_size);
  Json out = Json::Object();
  out.Set("session", id_);
  out.Set("directory", directory);
  out.Set("photos_archived", report.photos_archived);
  out.Set("deduplicated", report.deduplicated);
  out.Set("original_bytes", report.original_bytes);
  out.Set("stored_bytes", report.stored_bytes);
  out.Set("compression_ratio", report.compression_ratio);
  out.Set("vault_objects", vault.num_objects());
  return out;
}

std::shared_ptr<Session> SessionManager::Create(Corpus corpus) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string id = StrFormat("s-%llu",
                                   static_cast<unsigned long long>(next_id_++));
  auto session = std::make_shared<Session>(id, std::move(corpus));
  sessions_[id] = session;
  return session;
}

std::shared_ptr<Session> SessionManager::Find(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionManager::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.erase(id) > 0;
}

std::size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace service
}  // namespace phocus
