/// \file phocus_client_main.cc
/// CLI client for phocusd. Quickstart:
///
///   phocusd --port=7411 &
///   phocus_client --port=7411 plan --budget=25MB
///
/// `plan` without --session creates a demo session first (400 generated
/// photos) so the one-liner works; pass --session=s-N to reuse one. See
/// docs/SERVICE.md for the full protocol.
///
/// The same client drives a sharded cluster: point --endpoint (or
/// --host/--port) at a phocus_coordinator and every command works
/// unchanged — sessions come back scoped (`<shard>/s-N`), and healthz /
/// stats / metrics report the merged cluster view (docs/COORDINATOR.md).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "telemetry/export.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

using phocus::Json;

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      std::string key;
      std::string value = "1";
      if (eq == std::string::npos) {
        key = arg.substr(2);
      } else {
        key = arg.substr(2, eq - 2);
        value = arg.substr(eq + 1);
      }
      args.flags[key] = value;
    } else if (args.command.empty()) {
      args.command = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

void PrintPlanSummary(const Json& result) {
  const Json& plan = result.Get("plan");
  std::printf("session %s%s\n", result.Get("session").AsString().c_str(),
              result.GetOr("cached", false).AsBool()
                  ? " (served from plan cache)"
                  : "");
  std::printf(
      "retained %zu photos (%s), archived %zu (%s); score %.4f "
      "(%.1f%% of ceiling, certified ratio %.3f)\n",
      plan.Get("retained").size(),
      phocus::HumanBytes(
          static_cast<std::uint64_t>(plan.Get("retained_bytes").AsInt()))
          .c_str(),
      plan.Get("archived").size(),
      phocus::HumanBytes(
          static_cast<std::uint64_t>(plan.Get("archived_bytes").AsInt()))
          .c_str(),
      plan.Get("score").AsDouble(),
      100.0 * plan.Get("score_fraction").AsDouble(),
      plan.Get("online_bound").Get("certified_ratio").AsDouble());
}

/// Renders a `metrics` verb result as an aligned report: one server summary
/// line, the full metric table, and service latency percentiles. Handles
/// both shapes: a single phocusd (plan-cache block) and a coordinator's
/// merged cluster view (shard roll-up, possibly degraded).
void PrintMetricsReport(const Json& result) {
  const Json server = result.Get("server");
  if (server.Has("shards")) {
    std::printf(
        "coordinator: %lld/%lld shards reachable%s%s   queue %lld   "
        "sessions %lld   slow requests logged: %zu\n",
        static_cast<long long>(server.Get("shards_reachable").AsInt()),
        static_cast<long long>(server.Get("shards").AsInt()),
        result.GetOr("degraded", false).AsBool() ? "   DEGRADED" : "",
        server.GetOr("draining", false).AsBool() ? "   DRAINING" : "",
        static_cast<long long>(server.GetOr("queue_depth", 0).AsInt()),
        static_cast<long long>(server.GetOr("sessions", 0).AsInt()),
        result.GetOr("slow_requests", Json::Array()).size());
  } else {
    const Json cache = server.GetOr("plan_cache", Json::Object());
    std::printf(
        "queue %lld/%lld   sessions %lld%s   plan cache %lld/%lld "
        "(hits %lld, misses %lld)   slow requests logged: %zu\n",
        static_cast<long long>(server.Get("queue_depth").AsInt()),
        static_cast<long long>(server.Get("queue_capacity").AsInt()),
        static_cast<long long>(server.Get("sessions").AsInt()),
        server.Get("draining").AsBool() ? "   DRAINING" : "",
        static_cast<long long>(cache.GetOr("size", 0).AsInt()),
        static_cast<long long>(cache.GetOr("capacity", 0).AsInt()),
        static_cast<long long>(cache.GetOr("hits", 0).AsInt()),
        static_cast<long long>(cache.GetOr("misses", 0).AsInt()),
        result.Get("slow_requests").size());
  }
  const phocus::telemetry::MetricsSnapshot snapshot =
      phocus::telemetry::MetricsFromJson(result.Get("metrics"));
  std::printf("\n%s", phocus::telemetry::MetricsToTable(snapshot)
                          .Render(server.Has("shards") ? "cluster metrics"
                                                       : "phocusd metrics")
                          .c_str());
  const phocus::TextTable latency =
      phocus::telemetry::LatencyTable(snapshot, "service.");
  if (latency.num_rows() > 0) {
    std::printf("\n%s", latency.Render("service latency").c_str());
  }
}

std::string EnsureSession(phocus::service::ServiceClient& client,
                          const Args& args) {
  if (args.Has("session")) return args.Get("session", "");
  Json corpus = Json::Object();
  corpus.Set("kind", args.Get("kind", "openimages"));
  corpus.Set("num_photos", std::stoi(args.Get("photos", "400")));
  corpus.Set("seed", std::stoi(args.Get("seed", "7")));
  const std::string session = client.CreateSession(std::move(corpus));
  std::printf("created %s\n", session.c_str());
  return session;
}

int Run(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (args.command.empty() || args.command == "help") {
    std::printf(
        "phocus_client [--host=H] [--port=P | --endpoint=H:P] COMMAND "
        "[flags]\n"
        "  (point --endpoint at a phocus_coordinator for the merged\n"
        "   cluster view; healthz exits non-zero if any shard is down)\n"
        "  ping                                     liveness probe\n"
        "  create [--kind=openimages|ecommerce] [--photos=N] [--seed=S]\n"
        "  plan --budget=25MB [--session=s-N] [--tau=V] [--exif-weight=V]\n"
        "  update --session=s-N --count=N [--seed=S]  fold new photos in\n"
        "  ingest --session=s-N --count=N [--seed=S] [--epsilon=E]\n"
        "         [--batch-photos=N] [--queue-photos=N] [--per-batch]\n"
        "         [--max-staleness-ms=T] [--budget-fraction=F]\n"
        "                                             queue photos; replan only\n"
        "                                             when drift exceeds epsilon\n"
        "  ingest-flush --session=s-N                 drain queue + replan now\n"
        "  set-budget --session=s-N --budget=BYTES    incremental re-plan\n"
        "  coverage --session=s-N [--top-k=K]\n"
        "  explain --session=s-N --photo=ID\n"
        "  archive --session=s-N --dir=PATH           cold set -> vault\n"
        "  stats [--watch=N] [--json]                 metrics table; --watch\n"
        "                                             refreshes every N seconds\n"
        "  metrics [--prometheus]                     snapshot (table or\n"
        "                                             Prometheus exposition)\n"
        "  healthz                                    drain/saturation probe;\n"
        "                                             exit 0 only when ok\n"
        "  dump-flight [--out=PATH]                   flight-recorder events\n"
        "  shutdown\n");
    return 0;
  }
  std::string host = args.Get("host", "127.0.0.1");
  int port = std::stoi(args.Get("port", "7411"));
  if (args.Has("endpoint")) {
    // --endpoint=HOST:PORT, handy for pointing one flag at a coordinator.
    const std::string endpoint = args.Get("endpoint", "");
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon + 1 == endpoint.size()) {
      std::fprintf(stderr, "--endpoint wants HOST:PORT, got '%s'\n",
                   endpoint.c_str());
      return 2;
    }
    host = endpoint.substr(0, colon);
    port = std::stoi(endpoint.substr(colon + 1));
  }
  phocus::service::ServiceClient client(host, port);

  if (args.command == "ping") {
    std::printf("%s\n", client.Ping() ? "pong" : "no pong");
    return 0;
  }
  if (args.command == "create") {
    Json corpus = Json::Object();
    corpus.Set("kind", args.Get("kind", "openimages"));
    corpus.Set("num_photos", std::stoi(args.Get("photos", "400")));
    corpus.Set("seed", std::stoi(args.Get("seed", "7")));
    std::printf("%s\n", client.CreateSession(std::move(corpus)).c_str());
    return 0;
  }
  if (args.command == "plan") {
    const std::string session = EnsureSession(client, args);
    Json params = Json::Object();
    params.Set("session", session);
    params.Set("budget", args.Get("budget", "25MB"));
    if (args.Has("tau")) params.Set("tau", std::stod(args.Get("tau", "0")));
    if (args.Has("exif-weight")) {
      params.Set("exif_weight", std::stod(args.Get("exif-weight", "0")));
    }
    PrintPlanSummary(client.Call("plan", std::move(params)));
    return 0;
  }
  if (args.command == "update") {
    Json params = Json::Object();
    params.Set("session", args.Get("session", ""));
    params.Set("count", std::stoi(args.Get("count", "50")));
    params.Set("seed", std::stoi(args.Get("seed", "1")));
    if (args.Has("budget")) params.Set("budget", args.Get("budget", ""));
    const Json result = client.Call("update", std::move(params));
    const Json& stats = result.Get("stats");
    std::printf("added %lld photos (%lld subsets), evicted %lld, %lld gain "
                "evaluations\n",
                static_cast<long long>(stats.Get("photos_added").AsInt()),
                static_cast<long long>(stats.Get("subsets_added").AsInt()),
                static_cast<long long>(
                    stats.Get("evicted_for_feasibility").AsInt()),
                static_cast<long long>(
                    stats.Get("gain_evaluations").AsInt()));
    PrintPlanSummary(result);
    return 0;
  }
  if (args.command == "ingest" || args.command == "ingest-flush") {
    Json params = Json::Object();
    params.Set("session", args.Get("session", ""));
    Json result;
    if (args.command == "ingest") {
      params.Set("count", std::stoi(args.Get("count", "50")));
      params.Set("seed", std::stoi(args.Get("seed", "1")));
      if (args.Has("budget")) params.Set("budget", args.Get("budget", ""));
      if (args.Has("epsilon")) {
        params.Set("epsilon", std::stod(args.Get("epsilon", "0.05")));
      }
      if (args.Has("batch-photos")) {
        params.Set("batch_photos", std::stoi(args.Get("batch-photos", "32")));
      }
      if (args.Has("queue-photos")) {
        params.Set("queue_photos", std::stoi(args.Get("queue-photos", "1024")));
      }
      if (args.Has("per-batch")) params.Set("per_batch", true);
      if (args.Has("max-staleness-ms")) {
        params.Set("max_staleness_ms",
                   std::stod(args.Get("max-staleness-ms", "0")));
      }
      if (args.Has("budget-fraction")) {
        params.Set("budget_fraction",
                   std::stod(args.Get("budget-fraction", "0")));
      }
      result = client.Call("ingest", std::move(params));
    } else {
      result = client.Call("ingest_flush", std::move(params));
    }
    std::printf("%s: %s; %lld pending, %lld absorbed photos, replans %lld "
                "(skipped %lld)\n",
                args.command.c_str(), result.Get("reason").AsString().c_str(),
                static_cast<long long>(result.Get("pending_photos").AsInt()),
                static_cast<long long>(result.Get("num_photos").AsInt()),
                static_cast<long long>(result.Get("replans").AsInt()),
                static_cast<long long>(
                    result.Get("replans_skipped").AsInt()));
    if (result.Has("drift")) {
      const Json& drift = result.Get("drift");
      std::printf("drift bound %.4f (relative %.4f) on stale score %.4f\n",
                  drift.Get("drift").AsDouble(),
                  drift.Get("relative_drift").AsDouble(),
                  drift.Get("stale_score").AsDouble());
    }
    if (result.Has("plan")) PrintPlanSummary(result);
    return 0;
  }
  if (args.command == "set-budget") {
    Json params = Json::Object();
    params.Set("session", args.Get("session", ""));
    params.Set("budget", args.Get("budget", ""));
    PrintPlanSummary(client.Call("set_budget", std::move(params)));
    return 0;
  }
  if (args.command == "coverage") {
    Json params = Json::Object();
    params.Set("session", args.Get("session", ""));
    params.Set("top_k", std::stoi(args.Get("top-k", "15")));
    const Json result = client.Call("coverage", std::move(params));
    for (const Json& row : result.Get("rows").items()) {
      std::printf("  %-28s w=%-8g coverage=%.3f kept=%lld/%lld\n",
                  row.Get("subset").AsString().c_str(),
                  row.Get("weight").AsDouble(),
                  row.Get("coverage").AsDouble(),
                  static_cast<long long>(row.Get("retained_members").AsInt()),
                  static_cast<long long>(row.Get("total_members").AsInt()));
    }
    return 0;
  }
  if (args.command == "explain") {
    Json params = Json::Object();
    params.Set("session", args.Get("session", ""));
    params.Set("photo", std::stoi(args.Get("photo", "0")));
    std::printf("%s",
                client.Call("explain", std::move(params))
                    .Get("text").AsString().c_str());
    return 0;
  }
  if (args.command == "archive") {
    Json params = Json::Object();
    params.Set("session", args.Get("session", ""));
    params.Set("directory", args.Get("dir", "phocus_vault"));
    const Json result = client.Call("archive_to_vault", std::move(params));
    std::printf("archived %lld photos into %s: %s stored (%.2fx compression, "
                "%lld deduplicated)\n",
                static_cast<long long>(result.Get("photos_archived").AsInt()),
                result.Get("directory").AsString().c_str(),
                phocus::HumanBytes(static_cast<std::uint64_t>(
                                       result.Get("stored_bytes").AsInt()))
                    .c_str(),
                result.Get("compression_ratio").AsDouble(),
                static_cast<long long>(result.Get("deduplicated").AsInt()));
    return 0;
  }
  if (args.command == "stats") {
    if (args.Has("json")) {
      // The pre-observability raw dump, for scripts that scrape it.
      std::printf("%s\n", client.Stats().Dump(1).c_str());
      return 0;
    }
    const int watch_seconds = std::stoi(args.Get("watch", "0"));
    while (true) {
      const Json result = client.Metrics();
      if (watch_seconds > 0) {
        std::printf("\x1b[2J\x1b[H");  // clear screen, home cursor
        std::printf("%s:%d   refresh %ds   (ctrl-c to stop)\n\n",
                    client.host().c_str(), client.port(), watch_seconds);
      }
      PrintMetricsReport(result);
      std::fflush(stdout);
      if (watch_seconds <= 0) break;
      std::this_thread::sleep_for(std::chrono::seconds(watch_seconds));
    }
    return 0;
  }
  if (args.command == "metrics") {
    const Json result = client.Metrics();
    if (args.Has("prometheus")) {
      std::printf("%s", phocus::telemetry::MetricsToPrometheus(
                            phocus::telemetry::MetricsFromJson(
                                result.Get("metrics")))
                            .c_str());
    } else {
      PrintMetricsReport(result);
    }
    return 0;
  }
  if (args.command == "healthz") {
    const Json result = client.Healthz();
    const std::string status = result.Get("status").AsString();
    if (result.Has("coordinator")) {
      // Merged cluster view: the top-level status is already the worst
      // shard's state, so the exit code reflects the whole cluster.
      const Json& self = result.Get("coordinator");
      const bool degraded = result.GetOr("degraded", false).AsBool();
      std::printf(
          "%s  shards=%lld/%lld%s%s\n", status.c_str(),
          static_cast<long long>(self.Get("shards_reachable").AsInt()),
          static_cast<long long>(self.Get("shards_total").AsInt()),
          degraded ? "  DEGRADED" : "",
          self.GetOr("draining", false).AsBool() ? "  DRAINING" : "");
      for (const Json& shard : result.Get("shards").items()) {
        if (shard.Has("error")) {
          std::printf("  %-24s %-12s %s\n",
                      shard.Get("shard").AsString().c_str(),
                      shard.Get("status").AsString().c_str(),
                      shard.Get("error").AsString().c_str());
        } else {
          std::printf("  %-24s %-12s queue=%lld sessions=%lld\n",
                      shard.Get("shard").AsString().c_str(),
                      shard.Get("status").AsString().c_str(),
                      static_cast<long long>(
                          shard.GetOr("queue_depth", 0).AsInt()),
                      static_cast<long long>(
                          shard.GetOr("sessions", 0).AsInt()));
        }
      }
      return (status == "ok" && !degraded) ? 0 : 1;
    }
    std::printf("%s  queue=%lld/%lld saturation=%.2f sessions=%lld\n",
                status.c_str(),
                static_cast<long long>(result.Get("queue_depth").AsInt()),
                static_cast<long long>(result.Get("queue_capacity").AsInt()),
                result.Get("admission_saturation").AsDouble(),
                static_cast<long long>(result.Get("sessions").AsInt()));
    return status == "ok" ? 0 : 1;
  }
  if (args.command == "dump-flight") {
    const Json result = client.DumpFlight();
    if (args.Has("out")) {
      const std::string path = args.Get("out", "flight.json");
      phocus::WriteFile(path, result.Dump(1) + "\n");
      std::printf("wrote %zu events to %s\n", result.Get("events").size(),
                  path.c_str());
    } else {
      std::printf("%s\n", result.Dump(1).c_str());
    }
    return 0;
  }
  if (args.command == "shutdown") {
    client.Shutdown();
    std::printf("server draining\n");
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'; try 'phocus_client help'\n",
               args.command.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const phocus::service::ServiceError& error) {
    std::fprintf(stderr, "server error: %s\n", error.what());
    return 1;
  } catch (const phocus::CheckFailure& failure) {
    std::fprintf(stderr, "error: %s\n", failure.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
