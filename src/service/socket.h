#ifndef PHOCUS_SERVICE_SOCKET_H_
#define PHOCUS_SERVICE_SOCKET_H_

#include <string>
#include <string_view>

/// \file socket.h
/// Minimal RAII wrappers over POSIX TCP sockets — just enough surface for
/// the length-prefixed phocusd protocol: a listener bound to a loopback (or
/// any) address, blocking accept/connect, and send-all / recv-some helpers.
/// All failures throw CheckFailure with errno context.

namespace phocus {
namespace service {

/// An owned, connected stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer; throws on error or peer close. Hooks the
  /// `socket.write` failpoint (a `short_write` action delivers a truncated
  /// prefix, then throws InjectedFault).
  void SendAll(std::string_view bytes) const;

  /// Reads at most `max_bytes`, appending to `out`. Returns false on clean
  /// EOF; throws on error. Hooks the `socket.read` failpoint (a
  /// `short_write` action clamps the read to one byte, exercising
  /// maximally fragmented framing).
  bool RecvSome(std::string* out, std::size_t max_bytes = 64 * 1024) const;

  /// Half-close in both directions, unblocking any reader; the fd stays
  /// owned until destruction. Safe to call from another thread.
  void ShutdownBoth() const;

  void Close();

 private:
  /// The send loop proper, with no failpoint hook.
  void SendRaw(std::string_view bytes) const;

  int fd_ = -1;
};

/// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
Socket ConnectTcp(const std::string& host, int port);

/// A listening TCP socket. Port 0 binds an ephemeral port; `port()` reports
/// the actual one.
class ListenSocket {
 public:
  ListenSocket(const std::string& host, int port, int backlog = 64);
  ~ListenSocket() = default;

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Blocks for the next connection. Returns an invalid Socket if the
  /// listener was shut down (the graceful-stop path).
  Socket Accept() const;

  /// Unblocks pending Accept calls; subsequent accepts fail.
  void Shutdown();

  int port() const { return port_; }

 private:
  Socket socket_;
  int port_ = 0;
};

}  // namespace service
}  // namespace phocus

#endif  // PHOCUS_SERVICE_SOCKET_H_
