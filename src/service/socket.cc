#include "service/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/strings.h"

namespace phocus {
namespace service {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw CheckFailure(what + ": " + std::strerror(errno));
}

sockaddr_in MakeAddress(const std::string& host, int port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  PHOCUS_CHECK(inet_pton(AF_INET, host.c_str(), &address.sin_addr) == 1,
               "not a numeric IPv4 address: " + host);
  return address;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::SendAll(std::string_view bytes) const {
  PHOCUS_CHECK(valid(), "send on closed socket");
  if (failpoint::AnyActive()) {
    const failpoint::Action action = failpoint::Evaluate("socket.write");
    if (action.kind == failpoint::ActionKind::kShortWrite && !bytes.empty()) {
      // Deliver a truncated prefix so the peer observes a partial frame,
      // then fail the way a connection dying mid-send would.
      SendRaw(bytes.substr(0, (bytes.size() + 1) / 2));
      throw failpoint::InjectedFault(
          "injected short write at failpoint socket.write");
    }
    failpoint::Perform("socket.write", action);
  }
  SendRaw(bytes);
}

void Socket::SendRaw(std::string_view bytes) const {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("send failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::RecvSome(std::string* out, std::size_t max_bytes) const {
  PHOCUS_CHECK(valid(), "recv on closed socket");
  if (failpoint::AnyActive()) {
    const failpoint::Action action = failpoint::Evaluate("socket.read");
    if (action.kind == failpoint::ActionKind::kShortWrite) {
      // Short-read flavor: deliver at most one byte this call, so framing
      // code sees maximally fragmented input.
      max_bytes = 1;
    } else {
      failpoint::Perform("socket.read", action);
    }
  }
  std::string chunk(max_bytes, '\0');
  ssize_t n;
  do {
    n = ::recv(fd_, chunk.data(), chunk.size(), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) ThrowErrno("recv failed");
  if (n == 0) return false;
  out->append(chunk.data(), static_cast<std::size_t>(n));
  return true;
}

void Socket::ShutdownBoth() const {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket ConnectTcp(const std::string& host, int port) {
  PHOCUS_FAILPOINT("socket.connect");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket failed");
  Socket socket(fd);
  const sockaddr_in address = MakeAddress(host, port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ThrowErrno(StrFormat("connect to %s:%d failed", host.c_str(), port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

ListenSocket::ListenSocket(const std::string& host, int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket failed");
  socket_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address = MakeAddress(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) < 0) {
    ThrowErrno(StrFormat("bind to %s:%d failed", host.c_str(), port));
  }
  if (::listen(fd, backlog) < 0) ThrowErrno("listen failed");
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_size) < 0) {
    ThrowErrno("getsockname failed");
  }
  port_ = ntohs(bound.sin_port);
}

Socket ListenSocket::Accept() const {
  while (true) {
    // Delay-only: the accept loop treats an exception as fatal, so an
    // armed `error` here would kill the server rather than one connection.
    PHOCUS_FAILPOINT_DELAY_ONLY("socket.accept");
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    // The graceful-stop path: Shutdown() makes accept fail; report "no more
    // connections" rather than throwing.
    return Socket();
  }
}

void ListenSocket::Shutdown() { socket_.ShutdownBoth(); }

}  // namespace service
}  // namespace phocus
