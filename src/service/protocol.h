#ifndef PHOCUS_SERVICE_PROTOCOL_H_
#define PHOCUS_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "phocus/system.h"
#include "util/json.h"
#include "util/logging.h"

/// \file protocol.h
/// The phocusd wire protocol: length-prefixed JSON frames over a byte
/// stream, plus the typed error vocabulary shared by server and client.
///
/// A frame is a 4-byte big-endian payload length followed by that many
/// bytes of UTF-8 JSON. Requests look like
///
///   {"id": 7, "endpoint": "plan", "params": {"session": "s-1", ...}}
///
/// and every request gets exactly one response, either
///
///   {"id": 7, "ok": true, "result": {...}}
///   {"id": 7, "ok": false, "error": {"code": "overloaded", "message": "..."}}
///
/// The full endpoint table and error-code semantics live in
/// docs/SERVICE.md.

namespace phocus {
namespace service {

/// Default cap on a single frame's payload. Oversized frames are a protocol
/// violation: the peer answers `frame_too_large` (when it can still attribute
/// the frame to a request) and closes the connection.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Wraps a payload in a length-prefixed frame.
std::string EncodeFrame(std::string_view payload);
std::string EncodeFrame(const Json& message);

/// Incremental frame extractor over a received byte stream. Feed bytes with
/// Append, then drain complete frames with Next. Tolerates frames arriving
/// split across arbitrarily many reads (and several frames per read).
class FrameDecoder {
 public:
  enum class Status {
    kFrame,     ///< `*frame` was filled with one complete payload
    kNeedMore,  ///< the buffered bytes do not yet hold a complete frame
    kTooLarge,  ///< the declared length exceeds the cap; close the stream
  };

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame payload, if any.
  Status Next(std::string* frame);

  std::size_t buffered_bytes() const { return buffer_.size(); }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
};

/// Typed protocol errors. Names (the wire form) are stable API.
enum class ErrorCode {
  kBadRequest,       ///< malformed JSON / missing or mistyped fields
  kUnknownEndpoint,  ///< endpoint name not in the table
  kUnknownSession,   ///< session id not found (expired or never created)
  kInfeasible,       ///< constraints unsatisfiable (budget below C(S0))
  kOverloaded,       ///< admission control rejected: request queue full
  kIngestOverloaded, ///< streaming ingest queue full; flush or retry later
  kDeadlineExceeded, ///< request expired before a worker could start it
  kShuttingDown,     ///< server is draining; no new work accepted
  kFrameTooLarge,    ///< peer sent a frame above the size cap
  kShardUnavailable, ///< coordinator: the owning shard is down or unreachable
  kInternal,         ///< unexpected server-side failure
};

std::string_view ErrorCodeName(ErrorCode code);
/// Inverse of ErrorCodeName; unknown names map to kInternal.
ErrorCode ErrorCodeFromName(std::string_view name);

/// Error responses decoded by the client surface as this exception.
class ServiceError : public CheckFailure {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : CheckFailure(std::string(ErrorCodeName(code)) + ": " + message),
        code_(code),
        message_(message) {}
  ErrorCode code() const { return code_; }
  /// The message without the code prefix that what() carries — use this
  /// when re-wrapping into an error response, or the prefix doubles.
  const std::string& message() const { return message_; }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Message builders.
Json MakeRequest(std::uint64_t id, const std::string& endpoint, Json params);
Json MakeOkResponse(std::uint64_t id, Json result);
Json MakeErrorResponse(std::uint64_t id, ErrorCode code,
                       const std::string& message);

/// Deterministic plan serialization: everything a client needs to act on the
/// plan, with wall-clock fields (build/solve seconds, trace) excluded so two
/// identical solves serialize byte-identically. Used by the `plan`/`update`
/// endpoints and by tests comparing server plans against in-process solves.
Json PlanToJson(const ArchivePlan& plan);

/// Canonical text form of ArchiveOptions — the options half of the plan-cache
/// key. Two option structs with equal effective values map to equal keys.
std::string CanonicalOptionsKey(const ArchiveOptions& options);

/// FNV-1a 64 over arbitrary bytes (corpus fingerprinting).
std::uint64_t Fnv64(std::string_view bytes);

}  // namespace service
}  // namespace phocus

#endif  // PHOCUS_SERVICE_PROTOCOL_H_
