#ifndef PHOCUS_SERVICE_PLAN_CACHE_H_
#define PHOCUS_SERVICE_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "phocus/system.h"

/// \file plan_cache.h
/// LRU cache of solved archive plans, keyed by
/// `<corpus fingerprint>|<canonical ArchiveOptions>` (see
/// service::CanonicalOptionsKey). PlanArchive is deterministic for a given
/// (corpus, options), so a repeated `plan` request on an unmodified session
/// can be answered without re-solving; any corpus mutation changes the
/// fingerprint and thus misses naturally — stale entries age out of the LRU
/// rather than needing explicit invalidation.
///
/// Values are shared_ptr<const ArchivePlan>: the cache, concurrent readers,
/// and the owning session can all hold the same solved plan without copies.

namespace phocus {
namespace service {

class PlanCache {
 public:
  /// `capacity` = max resident plans; 0 disables caching entirely.
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan and refreshes its recency, or nullptr.
  std::shared_ptr<const ArchivePlan> Lookup(const std::string& key);

  /// Inserts (or refreshes) a plan, evicting the least recently used entry
  /// beyond capacity.
  void Insert(const std::string& key, std::shared_ptr<const ArchivePlan> plan);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// Lifetime counters (also mirrored into telemetry by the server).
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const ArchivePlan> plan;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace service
}  // namespace phocus

#endif  // PHOCUS_SERVICE_PLAN_CACHE_H_
