#ifndef PHOCUS_SERVICE_CLIENT_H_
#define PHOCUS_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>

#include "service/protocol.h"
#include "service/socket.h"
#include "util/json.h"

/// \file client.h
/// Blocking client for the phocusd protocol: one TCP connection, one
/// request/response in flight. Error responses surface as ServiceError (the
/// typed code preserved); transport failures as CheckFailure.
///
/// Used by the `phocus_client` CLI, the REPL's `connect` mode, and the
/// service tests.

namespace phocus {
namespace service {

class ServiceClient {
 public:
  /// Connects immediately; throws CheckFailure when the server is
  /// unreachable.
  ServiceClient(const std::string& host, int port,
                std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&&) = default;
  ServiceClient& operator=(ServiceClient&&) = default;

  /// Sends one request and blocks for its response. Returns the `result`
  /// object of an ok response; throws ServiceError for error responses.
  Json Call(const std::string& endpoint, Json params);
  Json Call(const std::string& endpoint) { return Call(endpoint, Json::Object()); }

  /// Convenience wrappers over Call.
  /// Creates a session; returns its id. `corpus_spec` is the params
  /// `corpus` object ({"kind": "openimages", "num_photos": ..., ...}).
  std::string CreateSession(Json corpus_spec);
  Json Plan(const std::string& session, const std::string& budget);
  Json Stats() { return Call("stats"); }
  bool Ping();
  void Shutdown() { Call("shutdown"); }

  const std::string& host() const { return host_; }
  int port() const { return port_; }

 private:
  std::string host_;
  int port_ = 0;
  Socket socket_;
  FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
};

}  // namespace service
}  // namespace phocus

#endif  // PHOCUS_SERVICE_CLIENT_H_
