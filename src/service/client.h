#ifndef PHOCUS_SERVICE_CLIENT_H_
#define PHOCUS_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.h"
#include "service/socket.h"
#include "util/json.h"

/// \file client.h
/// Blocking client for the phocusd protocol: one TCP connection, one
/// request/response in flight. Error responses surface as ServiceError (the
/// typed code preserved); transport failures as CheckFailure.
///
/// CallIdempotent layers capped exponential backoff on top: transport
/// failures redial the connection, retryable error codes (overloaded,
/// deadline_exceeded) back off and resend. Only safe for idempotent
/// endpoints — resending `plan` recomputes the same plan; resending a
/// hypothetical "append" would double-apply.
///
/// Used by the `phocus_client` CLI, the REPL's `connect` mode, and the
/// service tests.

namespace phocus {
namespace service {

/// Backoff schedule for CallIdempotent. The default schedule is
/// deterministic (no jitter) so fault-injection tests replay identically.
struct RetryPolicy {
  int max_attempts = 4;            ///< total tries, including the first
  double initial_backoff_ms = 5.0; ///< wait after the first failure
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 100.0;   ///< cap on any single wait
  /// Sleep hook; tests inject a recorder so no wall-clock time passes.
  /// Null means really sleep.
  std::function<void(double ms)> sleep_fn;
  /// Decorrelated jitter: when enabled, each wait is drawn uniformly from
  /// [initial_backoff_ms, min(max_backoff_ms, 3 * previous wait)] instead
  /// of the multiplicative schedule above, so N clients hammering a
  /// recovering server spread their retries out instead of synchronizing
  /// into storms. The draw comes from a seeded xoshiro stream: equal seeds
  /// replay the exact same schedule (tests stay deterministic), distinct
  /// seeds decorrelate. Off by default.
  bool decorrelated_jitter = false;
  std::uint64_t jitter_seed = 0;
};

/// True for error codes an idempotent retry can help with (transient
/// server states), false for semantic errors that will recur.
bool IsRetryableError(ErrorCode code);

class ServiceClient {
 public:
  /// Connects immediately; throws CheckFailure when the server is
  /// unreachable.
  ServiceClient(const std::string& host, int port,
                std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&&) = default;
  ServiceClient& operator=(ServiceClient&&) = default;

  /// Sends one request and blocks for its response. Returns the `result`
  /// object of an ok response; throws ServiceError for error responses.
  /// Every request carries a `request_id` (read it back via
  /// last_request_id()); servers echo it on the response and attach it to
  /// their per-request spans and slow-request log. By default the id is
  /// client-generated; a proxy forwarding someone else's request passes
  /// that caller's id as `request_id` instead, so one id traces the call
  /// end-to-end (client -> coordinator -> shard).
  Json Call(const std::string& endpoint, Json params,
            const std::string& request_id = "");
  Json Call(const std::string& endpoint) { return Call(endpoint, Json::Object()); }

  /// Like Call, but retries per `policy`: a transport failure drops the
  /// connection and redials before the next attempt; a retryable error
  /// response (see IsRetryableError) backs off and resends. The final
  /// attempt's failure propagates unchanged. Use only for idempotent
  /// endpoints.
  Json CallIdempotent(const std::string& endpoint, Json params,
                      const RetryPolicy& policy = {},
                      const std::string& request_id = "");
  Json CallIdempotent(const std::string& endpoint) {
    return CallIdempotent(endpoint, Json::Object());
  }

  /// Drops the current connection (and any buffered partial frame) and
  /// dials a fresh one. Throws CheckFailure when the server is unreachable.
  void Reconnect();

  /// Convenience wrappers over Call.
  /// Creates a session; returns its id. `corpus_spec` is the params
  /// `corpus` object ({"kind": "openimages", "num_photos": ..., ...}).
  std::string CreateSession(Json corpus_spec);
  Json Plan(const std::string& session, const std::string& budget);
  Json Stats() { return Call("stats"); }
  /// Observability verbs (control plane, never queued; docs/SERVICE.md).
  Json Metrics() { return Call("metrics"); }
  Json Healthz() { return Call("healthz"); }
  Json DumpFlight() { return Call("dump_flight"); }
  bool Ping();
  void Shutdown() { Call("shutdown"); }

  const std::string& host() const { return host_; }
  int port() const { return port_; }
  /// The request_id sent with the most recent Call.
  const std::string& last_request_id() const { return last_request_id_; }

 private:
  std::string host_;
  int port_ = 0;
  std::size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  Socket socket_;
  FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
  std::string request_tag_;
  std::string last_request_id_;
};

}  // namespace service
}  // namespace phocus

#endif  // PHOCUS_SERVICE_CLIENT_H_
