#ifndef PHOCUS_SERVICE_SESSION_H_
#define PHOCUS_SERVICE_SESSION_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "phocus/incremental.h"
#include "phocus/streaming.h"
#include "phocus/system.h"
#include "service/plan_cache.h"
#include "util/json.h"

/// \file session.h
/// Per-client serving state for phocusd. A Session owns one corpus plus the
/// machinery to answer repeated questions about it: a PhocusSystem facade
/// (rebuilt lazily after mutations), an IncrementalArchiver for `update`
/// streams, the most recent plan (for coverage/explain/archive_to_vault),
/// and a cached corpus fingerprint feeding the server-wide PlanCache.
///
/// Locking is fine-grained: the SessionManager's map lock is only held for
/// id lookup; all real work happens under the individual session's mutex, so
/// requests against different sessions never serialize on each other.

namespace phocus {
namespace service {

class Session {
 public:
  Session(std::string id, Corpus corpus);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& id() const { return id_; }

  /// Corpus summary: {"session", "corpus", "num_photos", "total_bytes",
  /// "num_subsets", "num_required"}.
  Json Describe();

  struct PlanOutcome {
    std::shared_ptr<const ArchivePlan> plan;
    bool from_cache = false;
  };

  /// Full PlanArchive under `options`, consulting (and feeding) `cache`.
  /// A cache hit is served without touching the solver.
  PlanOutcome Plan(const ArchiveOptions& options, PlanCache* cache);

  struct UpdateOutcome {
    std::shared_ptr<const ArchivePlan> plan;
    IncrementalUpdateStats stats;
  };

  /// Folds `count` freshly generated photos (deterministic from `seed`) into
  /// the plan via the IncrementalArchiver. The first update performs the
  /// archiver's initial solve with `options`; later updates reuse it.
  UpdateOutcome AddGeneratedPhotos(std::size_t count, std::uint64_t seed,
                                   const ArchiveOptions& options);

  /// Re-plans incrementally under a new budget. Throws InfeasibleBudgetError
  /// when the budget cannot cover the required set S0.
  UpdateOutcome SetBudget(Cost budget, const ArchiveOptions& options);

  /// Streaming-ingest policy knobs carried on each `ingest` request (see
  /// StreamingOptions for semantics). Applied live before the batch.
  struct IngestConfig {
    double epsilon = 0.05;
    double max_staleness_ms = 0.0;
    std::size_t batch_photos = 32;
    std::size_t queue_photos = 1024;
    bool replan_every_batch = false;
    double budget_fraction = 0.0;
    /// When > 0, the batch also carries one extra subset referencing this
    /// many already-ingested photos — backfill of an old album arriving
    /// late / out of order.
    std::size_t backfill_members = 0;
  };

  struct IngestResult {
    IngestOutcome outcome;
    /// The fresh plan when the call replanned; null when the batch merely
    /// queued or stayed below ε.
    std::shared_ptr<const ArchivePlan> plan;
    std::size_t num_photos = 0;  ///< corpus photos after the call (absorbed)
    /// Session-lifetime totals, for wire responses and scenario guards.
    std::size_t replans = 0;
    std::size_t replans_skipped = 0;
    std::size_t drift_evals = 0;
  };

  /// Enqueues `count` deterministically generated photos (from `seed`) into
  /// the session's bounded streaming queue. The first ingest (or update)
  /// performs the initial solve with `options`. Throws IngestOverloadedError
  /// when the queue is full. `now_ms` (may be null) feeds the staleness
  /// fallback clock.
  IngestResult Ingest(std::size_t count, std::uint64_t seed,
                      const ArchiveOptions& options, const IngestConfig& config,
                      std::function<double()> now_ms);

  /// Drains the streaming queue and replans if anything is pending — the
  /// client-visible "make the plan current" barrier.
  IngestResult IngestFlush();

  /// Per-subset coverage rows of the last plan (top_k = 0 keeps all).
  Json Coverage(std::size_t top_k);

  /// Human-readable retention explanation for one photo of the last plan.
  Json Explain(PhotoId photo);

  /// Stores the last plan's cold set into an ArchiveVault at `directory`
  /// (created if missing) using the vault's deferred-manifest batch path.
  Json ArchiveToVault(const std::string& directory, int render_size);

  /// Hex corpus fingerprint (content hash; mutations change it).
  std::string Fingerprint();

 private:
  ArchivePlan SolveLocked(const ArchiveOptions& options);
  std::string FingerprintLocked();
  void InvalidateLocked();
  /// Lazily creates the streaming archiver (initial solve included); the
  /// budget comes from `options` or falls back to the last plan's.
  StreamingArchiver& StreamerLocked(const ArchiveOptions& options);
  /// Syncs corpus_ from the streamer and refreshes last_plan_ bookkeeping
  /// after a streamer call that absorbed photos and/or replanned.
  void AbsorbStreamerStateLocked(const IngestOutcome& outcome,
                                 IngestResult* result);

  const std::string id_;
  std::mutex mutex_;
  Corpus corpus_;
  std::unique_ptr<PhocusSystem> system_;  // lazily (re)built from corpus_
  /// One streaming archiver serves both the `update` path (flush + immediate
  /// AddPhotos replan) and the `ingest` path (queued, drift-triggered).
  std::unique_ptr<StreamingArchiver> streamer_;
  std::shared_ptr<const ArchivePlan> last_plan_;
  ArchiveOptions last_options_;
  bool has_plan_ = false;
  std::string fingerprint_;  // empty = stale
};

/// Thread-safe registry of live sessions.
class SessionManager {
 public:
  SessionManager() = default;

  /// Registers a new session around `corpus` and returns it.
  std::shared_ptr<Session> Create(Corpus corpus);

  /// Looks a session up; nullptr when unknown.
  std::shared_ptr<Session> Find(const std::string& id) const;

  bool Remove(const std::string& id);
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_id_ = 1;
};

}  // namespace service
}  // namespace phocus

#endif  // PHOCUS_SERVICE_SESSION_H_
