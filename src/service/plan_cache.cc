#include "service/plan_cache.h"

#include "service/protocol.h"
#include "telemetry/flight_recorder.h"
#include "util/failpoint.h"

namespace phocus {
namespace service {

std::shared_ptr<const ArchivePlan> PlanCache::Lookup(const std::string& key) {
  // Fail open: a faulty cache must degrade to a miss (recompute), never
  // fail the request, so an injected `error` here reports no entry.
  if (failpoint::AnyActive()) {
    const failpoint::Action action = failpoint::Evaluate("plan_cache.lookup");
    if (action.kind == failpoint::ActionKind::kDelay ||
        action.kind == failpoint::ActionKind::kCrash) {
      failpoint::Perform("plan_cache.lookup", action);
    } else if (action.armed()) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++misses_;
      return nullptr;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const ArchivePlan> plan) {
  // Same fail-open contract: a cache that cannot store simply forgets.
  if (failpoint::AnyActive()) {
    const failpoint::Action action = failpoint::Evaluate("plan_cache.insert");
    if (action.kind == failpoint::ActionKind::kDelay ||
        action.kind == failpoint::ActionKind::kCrash) {
      failpoint::Perform("plan_cache.insert", action);
    } else if (action.armed()) {
      return;
    }
  }
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  // Flight events carry the key's hash, not the key: enough to correlate
  // an insert with the eviction that displaced it without logging corpus
  // fingerprints into the crash dump.
  telemetry::FlightRecorder::Record("plan_cache.insert", "", Fnv64(key));
  while (lru_.size() > capacity_) {
    telemetry::FlightRecorder::Record("plan_cache.evict", "",
                                      Fnv64(lru_.back().key));
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace service
}  // namespace phocus
