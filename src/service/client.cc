#include "service/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace phocus {
namespace service {

bool IsRetryableError(ErrorCode code) {
  // Transient server states. Everything else (bad request, unknown
  // session, infeasible budget, ...) would fail identically on resend.
  return code == ErrorCode::kOverloaded || code == ErrorCode::kDeadlineExceeded;
}

ServiceClient::ServiceClient(const std::string& host, int port,
                             std::size_t max_frame_bytes)
    : host_(host),
      port_(port),
      max_frame_bytes_(max_frame_bytes),
      socket_(ConnectTcp(host, port)),
      decoder_(max_frame_bytes),
      // Request ids only need to be unique enough to correlate one client's
      // logs with server-side spans; pid + per-connection counter is plenty.
      request_tag_(StrFormat("c%d", static_cast<int>(::getpid()))) {}

void ServiceClient::Reconnect() {
  socket_ = ConnectTcp(host_, port_);
  decoder_ = FrameDecoder(max_frame_bytes_);
}

Json ServiceClient::Call(const std::string& endpoint, Json params,
                         const std::string& request_id) {
  const std::uint64_t id = next_id_++;
  last_request_id_ =
      request_id.empty()
          ? StrFormat("%s-%llu", request_tag_.c_str(),
                      static_cast<unsigned long long>(id))
          : request_id;
  Json request = MakeRequest(id, endpoint, std::move(params));
  request.Set("request_id", last_request_id_);
  socket_.SendAll(EncodeFrame(request));
  std::string frame;
  while (true) {
    const FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kFrame) break;
    PHOCUS_CHECK(status != FrameDecoder::Status::kTooLarge,
                 "server sent an oversized frame");
    std::string chunk;
    PHOCUS_CHECK(socket_.RecvSome(&chunk),
                 "connection closed awaiting response to " + endpoint);
    decoder_.Append(chunk);
  }
  const Json response = Json::Parse(frame);
  PHOCUS_CHECK(
      static_cast<std::uint64_t>(response.GetOr("id", 0).AsInt()) == id,
      "response id mismatch");
  // Pre-request_id servers simply omit the echo; only a wrong echo is a
  // protocol violation.
  PHOCUS_CHECK(!response.Has("request_id") ||
                   response.Get("request_id").AsString() == last_request_id_,
               "response request_id mismatch");
  if (response.Get("ok").AsBool()) {
    return response.Get("result");
  }
  const Json& error = response.Get("error");
  throw ServiceError(ErrorCodeFromName(error.Get("code").AsString()),
                     error.Get("message").AsString());
}

Json ServiceClient::CallIdempotent(const std::string& endpoint, Json params,
                                   const RetryPolicy& policy,
                                   const std::string& request_id) {
  PHOCUS_CHECK(policy.max_attempts >= 1, "max_attempts must be at least 1");
  // Decorrelated-jitter stream (only advanced when the policy enables it);
  // the seed fully determines the schedule, so tests replay it exactly.
  Rng jitter_rng(policy.jitter_seed);
  double backoff_ms = policy.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    bool redial = false;
    try {
      if (!socket_.valid()) Reconnect();
      return Call(endpoint, params, request_id);  // params copied for resend
    } catch (const ServiceError& error) {
      if (attempt >= policy.max_attempts || !IsRetryableError(error.code())) {
        throw;
      }
    } catch (const CheckFailure&) {
      // Transport failure: the stream may hold a half-written request or a
      // half-read response, so the connection cannot be reused.
      if (attempt >= policy.max_attempts) throw;
      redial = true;
    }
    if (redial) socket_.Close();
    if (policy.decorrelated_jitter) {
      // Decorrelated jitter: next wait ~ U[initial, 3 * previous wait],
      // capped. Breaks up retry synchronization across clients while each
      // seeded stream stays reproducible bit-for-bit.
      const double lo = policy.initial_backoff_ms;
      const double hi =
          std::min(policy.max_backoff_ms, std::max(lo, 3.0 * backoff_ms));
      backoff_ms = hi <= lo ? lo : jitter_rng.Uniform(lo, hi);
    }
    if (backoff_ms > 0.0) {
      if (policy.sleep_fn) {
        policy.sleep_fn(backoff_ms);
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
    if (!policy.decorrelated_jitter) {
      backoff_ms = std::min(backoff_ms * policy.backoff_multiplier,
                            policy.max_backoff_ms);
    }
  }
}

std::string ServiceClient::CreateSession(Json corpus_spec) {
  Json params = Json::Object();
  params.Set("corpus", std::move(corpus_spec));
  return Call("create_session", std::move(params)).Get("session").AsString();
}

Json ServiceClient::Plan(const std::string& session,
                         const std::string& budget) {
  Json params = Json::Object();
  params.Set("session", session);
  params.Set("budget", budget);
  return Call("plan", std::move(params));
}

bool ServiceClient::Ping() {
  return Call("ping").GetOr("pong", false).AsBool();
}

}  // namespace service
}  // namespace phocus
