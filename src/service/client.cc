#include "service/client.h"

#include "util/logging.h"

namespace phocus {
namespace service {

ServiceClient::ServiceClient(const std::string& host, int port,
                             std::size_t max_frame_bytes)
    : host_(host),
      port_(port),
      socket_(ConnectTcp(host, port)),
      decoder_(max_frame_bytes) {}

Json ServiceClient::Call(const std::string& endpoint, Json params) {
  const std::uint64_t id = next_id_++;
  socket_.SendAll(EncodeFrame(MakeRequest(id, endpoint, std::move(params))));
  std::string frame;
  while (true) {
    const FrameDecoder::Status status = decoder_.Next(&frame);
    if (status == FrameDecoder::Status::kFrame) break;
    PHOCUS_CHECK(status != FrameDecoder::Status::kTooLarge,
                 "server sent an oversized frame");
    std::string chunk;
    PHOCUS_CHECK(socket_.RecvSome(&chunk),
                 "connection closed awaiting response to " + endpoint);
    decoder_.Append(chunk);
  }
  const Json response = Json::Parse(frame);
  PHOCUS_CHECK(
      static_cast<std::uint64_t>(response.GetOr("id", 0).AsInt()) == id,
      "response id mismatch");
  if (response.Get("ok").AsBool()) {
    return response.Get("result");
  }
  const Json& error = response.Get("error");
  throw ServiceError(ErrorCodeFromName(error.Get("code").AsString()),
                     error.Get("message").AsString());
}

std::string ServiceClient::CreateSession(Json corpus_spec) {
  Json params = Json::Object();
  params.Set("corpus", std::move(corpus_spec));
  return Call("create_session", std::move(params)).Get("session").AsString();
}

Json ServiceClient::Plan(const std::string& session,
                         const std::string& budget) {
  Json params = Json::Object();
  params.Set("session", session);
  params.Set("budget", budget);
  return Call("plan", std::move(params));
}

bool ServiceClient::Ping() {
  return Call("ping").GetOr("pong", false).AsBool();
}

}  // namespace service
}  // namespace phocus
