/// \file phocusd_main.cc
/// The phocusd daemon: serves archive planning over TCP (see
/// docs/SERVICE.md for the protocol).
///
///   phocusd --port=7411 --workers=4 --queue=64 --cache=32
///
/// SIGINT/SIGTERM trigger the same graceful drain as the `shutdown`
/// endpoint: in-flight requests finish, then the process exits.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "service/server.h"
#include "telemetry/flight_recorder.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

std::atomic<bool> g_stop_requested{false};

void HandleSignal(int) { g_stop_requested.store(true); }

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    const std::size_t eq = arg.find('=');
    std::string key;
    std::string value = "1";
    if (eq == std::string::npos) {
      key = arg.substr(2);
    } else {
      key = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
    }
    flags[key] = value;
  }
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phocus;
  const std::map<std::string, std::string> flags = ParseFlags(argc, argv);
  if (flags.count("help") > 0) {
    std::printf(
        "phocusd: PHOcus archive-planning daemon\n"
        "  --host=ADDR        bind address (default 127.0.0.1)\n"
        "  --port=N           TCP port; 0 picks an ephemeral one (default 7411)\n"
        "  --workers=N        solver worker threads; 0 = hardware (default 0)\n"
        "  --queue=N          admission bound on outstanding requests (default 64)\n"
        "  --cache=N          plan-cache capacity in plans (default 32)\n"
        "  --deadline-ms=F    default per-request deadline; 0 = none\n"
        "  --slow-request-ms=F  log requests slower than this with their span\n"
        "                     tree (default: $PHOCUS_SLOW_REQUEST_MS, else off)\n"
        "  --debug            enable debug endpoints (debug_sleep,\n"
        "                     debug_failpoint); never in production\n"
        "  --flight-dump=PATH where a crash writes the flight-recorder events\n"
        "                     (default: $PHOCUS_FLIGHT_DUMP, else\n"
        "                     phocusd_flight.json)\n");
    return 0;
  }

  service::ServerOptions options;
  options.port = 7411;
  try {
    if (flags.count("host")) options.host = flags.at("host");
    if (flags.count("port")) options.port = std::stoi(flags.at("port"));
    if (flags.count("workers")) {
      options.num_workers = std::stoul(flags.at("workers"));
    }
    if (flags.count("queue")) {
      options.queue_capacity = std::stoul(flags.at("queue"));
    }
    if (flags.count("cache")) {
      options.plan_cache_capacity = std::stoul(flags.at("cache"));
    }
    if (flags.count("deadline-ms")) {
      options.default_deadline_ms = std::stod(flags.at("deadline-ms"));
    }
    if (flags.count("slow-request-ms")) {
      options.slow_request_ms = std::stod(flags.at("slow-request-ms"));
    }
    if (flags.count("debug")) options.enable_debug_endpoints = true;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bad flag value: %s\n", error.what());
    return 2;
  }

  // Always-on flight recorder: if the daemon dies (std::terminate or a
  // fatal signal), the last events land here as JSON.
  std::string flight_dump = "phocusd_flight.json";
  if (const char* env = std::getenv("PHOCUS_FLIGHT_DUMP")) flight_dump = env;
  if (flags.count("flight-dump")) flight_dump = flags.at("flight-dump");
  telemetry::FlightRecorder::InstallCrashHandler(flight_dump);

  try {
    service::ServiceServer server(options);
    server.Start();
    std::printf("phocusd listening on %s:%d\n", options.host.c_str(),
                server.port());
    std::fflush(stdout);

    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    // The handler only flips a flag; this watcher turns it into a graceful
    // drain without doing non-signal-safe work inside the handler.
    std::thread signal_watcher([&server] {
      while (!g_stop_requested.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      server.RequestShutdown();
    });

    server.Wait();
    g_stop_requested.store(true);
    signal_watcher.join();
  } catch (const CheckFailure& failure) {
    std::fprintf(stderr, "phocusd: %s\n", failure.what());
    return 1;
  }
  return 0;
}
