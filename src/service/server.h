#ifndef PHOCUS_SERVICE_SERVER_H_
#define PHOCUS_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "service/plan_cache.h"
#include "service/protocol.h"
#include "service/session.h"
#include "service/socket.h"
#include "telemetry/trace.h"
#include "util/json.h"
#include "util/thread_pool.h"

/// \file server.h
/// phocusd: the archive-planning daemon. One TCP listener, one thread per
/// connection reading length-prefixed JSON requests, and a bounded request
/// queue feeding a worker ThreadPool. Between the socket layer and
/// PhocusSystem sit the serving pieces:
///
///  - SessionManager: per-client corpus + incremental state, fine-grained
///    locks (requests against different sessions run concurrently),
///  - PlanCache: repeated `plan` calls on an unmodified corpus are answered
///    without re-solving,
///  - admission control: when `queue_capacity` requests are admitted but
///    unfinished, new ones are rejected with the typed `overloaded` error
///    instead of queueing unboundedly,
///  - per-request deadlines: an admitted request that waits past its
///    deadline is answered `deadline_exceeded` without touching a solver,
///  - graceful shutdown: the `shutdown` endpoint (or RequestShutdown())
///    stops admission, drains every in-flight request, then closes.
///
/// Endpoint table, parameter schemas and error codes: docs/SERVICE.md.

namespace phocus {
namespace service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via port().
  int port = 0;
  /// Worker threads solving requests; 0 = hardware concurrency.
  std::size_t num_workers = 0;
  /// Max admitted-but-unfinished requests (queued + executing) before
  /// admission control answers `overloaded`.
  std::size_t queue_capacity = 64;
  /// Resident plans in the plan cache; 0 disables caching.
  std::size_t plan_cache_capacity = 32;
  /// Frame-size cap; oversized frames close the connection.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Applied when a request carries no `deadline_ms`; 0 = no deadline.
  double default_deadline_ms = 0.0;
  /// Enables the `debug_sleep` endpoint (deterministic queue-pressure and
  /// drain tests). Never enable in production.
  bool enable_debug_endpoints = false;
  /// Requests slower than this (queue wait + handling + response write) are
  /// logged with their span tree and kept in the slow-request log exposed by
  /// the `metrics` verb. 0 reads PHOCUS_SLOW_REQUEST_MS from the
  /// environment (absent = disabled); negative disables unconditionally.
  double slow_request_ms = 0.0;
  /// Clock (milliseconds, monotonic) feeding the streaming-ingest staleness
  /// fallback. Null = std::chrono::steady_clock. Tests inject
  /// scenario_support's FakeClock here so time-triggered replans are
  /// deterministic with zero real sleeps.
  std::function<double()> ingest_now_ms;
};

/// Bounded log of the most recent slow requests (each a JSON record with
/// the request id, endpoint, timing breakdown, and span tree). Thread-safe;
/// oldest entries fall off.
class SlowRequestLog {
 public:
  static constexpr std::size_t kMaxRecords = 32;

  void Add(Json record);
  /// The stored records as a JSON array, oldest first.
  Json Snapshot() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::deque<Json> records_;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens and spawns the accept loop. Throws CheckFailure when the
  /// address is unavailable.
  void Start();

  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Begins a graceful shutdown: new requests are rejected with
  /// `shutting_down`, in-flight ones drain. Non-blocking; pair with Wait().
  void RequestShutdown();

  /// Blocks until a shutdown request has fully drained and all threads are
  /// joined.
  void Wait();

  /// Observability hooks for tests and the stats endpoint.
  std::size_t queue_depth() const { return admitted_.load(); }
  const PlanCache& plan_cache() const { return plan_cache_; }
  SessionManager& sessions() { return sessions_; }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> busy{false};
    std::atomic<bool> done{false};
  };

  /// What one handled request looked like, for the slow-request check and
  /// log. Filled by Process for admitted data-plane requests; `tree` is the
  /// request's span tree (service.request root) when tracing was on.
  struct RequestObservation {
    bool handled = false;
    bool traced = false;
    std::string endpoint;
    std::string request_id;
    double queue_wait_ms = 0.0;
    double handle_ms = 0.0;
    telemetry::SpanRecord tree;
  };

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// Admission + queueing + execution of one request; returns the response
  /// (with the client's request_id echoed) and fills `observation`.
  Json Process(const Json& request, RequestObservation* observation);
  Json ProcessParsed(std::uint64_t id, const std::string& endpoint,
                     const Json& params, const std::string& request_id,
                     RequestObservation* observation);
  /// Slow-request check after the response hit the wire.
  void FinishObservation(RequestObservation* observation,
                         std::uint64_t respond_ns);
  /// Endpoint dispatch (runs on a worker thread).
  Json Handle(const std::string& endpoint, const Json& params);
  Json HandleCreateSession(const Json& params);
  Json HandlePlan(const Json& params);
  Json HandleUpdate(const Json& params);
  Json HandleSetBudget(const Json& params);
  Json HandleIngest(const Json& params);
  Json HandleIngestFlush(const Json& params);
  Json HandleArchiveToVault(const Json& params);
  Json HandleStats();
  /// Control-plane observability verbs (bypass admission; docs/SERVICE.md).
  Json HandleMetrics();
  Json HandleHealthz();
  std::shared_ptr<Session> FindSession(const Json& params) const;
  void FinishShutdown();

  ServerOptions options_;
  double slow_request_ms_ = 0.0;
  SlowRequestLog slow_log_;
  int port_ = 0;
  std::unique_ptr<ListenSocket> listener_;
  std::unique_ptr<ThreadPool> pool_;
  SessionManager sessions_;
  PlanCache plan_cache_;

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  std::atomic<std::size_t> admitted_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  std::once_flag shutdown_once_;
};

}  // namespace service
}  // namespace phocus

#endif  // PHOCUS_SERVICE_SERVER_H_
