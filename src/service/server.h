#ifndef PHOCUS_SERVICE_SERVER_H_
#define PHOCUS_SERVICE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "service/plan_cache.h"
#include "service/protocol.h"
#include "service/session.h"
#include "service/socket.h"
#include "util/json.h"
#include "util/thread_pool.h"

/// \file server.h
/// phocusd: the archive-planning daemon. One TCP listener, one thread per
/// connection reading length-prefixed JSON requests, and a bounded request
/// queue feeding a worker ThreadPool. Between the socket layer and
/// PhocusSystem sit the serving pieces:
///
///  - SessionManager: per-client corpus + incremental state, fine-grained
///    locks (requests against different sessions run concurrently),
///  - PlanCache: repeated `plan` calls on an unmodified corpus are answered
///    without re-solving,
///  - admission control: when `queue_capacity` requests are admitted but
///    unfinished, new ones are rejected with the typed `overloaded` error
///    instead of queueing unboundedly,
///  - per-request deadlines: an admitted request that waits past its
///    deadline is answered `deadline_exceeded` without touching a solver,
///  - graceful shutdown: the `shutdown` endpoint (or RequestShutdown())
///    stops admission, drains every in-flight request, then closes.
///
/// Endpoint table, parameter schemas and error codes: docs/SERVICE.md.

namespace phocus {
namespace service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via port().
  int port = 0;
  /// Worker threads solving requests; 0 = hardware concurrency.
  std::size_t num_workers = 0;
  /// Max admitted-but-unfinished requests (queued + executing) before
  /// admission control answers `overloaded`.
  std::size_t queue_capacity = 64;
  /// Resident plans in the plan cache; 0 disables caching.
  std::size_t plan_cache_capacity = 32;
  /// Frame-size cap; oversized frames close the connection.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Applied when a request carries no `deadline_ms`; 0 = no deadline.
  double default_deadline_ms = 0.0;
  /// Enables the `debug_sleep` endpoint (deterministic queue-pressure and
  /// drain tests). Never enable in production.
  bool enable_debug_endpoints = false;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options = {});
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds, listens and spawns the accept loop. Throws CheckFailure when the
  /// address is unavailable.
  void Start();

  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Begins a graceful shutdown: new requests are rejected with
  /// `shutting_down`, in-flight ones drain. Non-blocking; pair with Wait().
  void RequestShutdown();

  /// Blocks until a shutdown request has fully drained and all threads are
  /// joined.
  void Wait();

  /// Observability hooks for tests and the stats endpoint.
  std::size_t queue_depth() const { return admitted_.load(); }
  const PlanCache& plan_cache() const { return plan_cache_; }
  SessionManager& sessions() { return sessions_; }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> busy{false};
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// Admission + queueing + execution of one request; returns the response.
  Json Process(const Json& request);
  /// Endpoint dispatch (runs on a worker thread).
  Json Handle(const std::string& endpoint, const Json& params);
  Json HandleCreateSession(const Json& params);
  Json HandlePlan(const Json& params);
  Json HandleUpdate(const Json& params);
  Json HandleSetBudget(const Json& params);
  Json HandleArchiveToVault(const Json& params);
  Json HandleStats();
  std::shared_ptr<Session> FindSession(const Json& params) const;
  void FinishShutdown();

  ServerOptions options_;
  int port_ = 0;
  std::unique_ptr<ListenSocket> listener_;
  std::unique_ptr<ThreadPool> pool_;
  SessionManager sessions_;
  PlanCache plan_cache_;

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  std::atomic<std::size_t> admitted_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  std::once_flag shutdown_once_;
};

}  // namespace service
}  // namespace phocus

#endif  // PHOCUS_SERVICE_SERVER_H_
