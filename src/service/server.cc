#include "service/server.h"

#include <cstdlib>
#include <future>

#include "datagen/corpus_io.h"
#include "datagen/ecommerce.h"
#include "datagen/openimages.h"
#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace phocus {
namespace service {

namespace {

/// Budgets arrive as "25MB" strings or raw byte numbers.
Cost BudgetFromJson(const Json& value) {
  if (value.is_string()) return ParseBytes(value.AsString());
  return static_cast<Cost>(value.AsInt());
}

ArchiveOptions OptionsFromParams(const Json& params, bool require_budget) {
  ArchiveOptions options;
  if (params.Has("budget")) {
    options.budget = BudgetFromJson(params.Get("budget"));
  } else {
    PHOCUS_CHECK(!require_budget, "missing required param: budget");
  }
  options.representation.sparsify_tau =
      params.GetOr("tau", Json(options.representation.sparsify_tau)).AsDouble();
  options.representation.exif_weight =
      params.GetOr("exif_weight", Json(options.representation.exif_weight))
          .AsDouble();
  options.representation.context_normalize =
      params.GetOr("context_normalize", true).AsBool();
  options.compute_online_bound = params.GetOr("online_bound", true).AsBool();
  options.coverage_rows = static_cast<std::size_t>(
      params.GetOr("coverage_rows", 0).AsInt());
  return options;
}

Corpus CorpusFromParams(const Json& params) {
  const Json spec = params.GetOr("corpus", Json::Object());
  const std::string kind = spec.GetOr("kind", Json("openimages")).AsString();
  if (kind == "openimages") {
    OpenImagesOptions options;
    options.num_photos = static_cast<std::size_t>(
        spec.GetOr("num_photos", 400).AsInt());
    options.seed = static_cast<std::uint64_t>(spec.GetOr("seed", 1).AsInt());
    options.near_duplicate_prob =
        spec.GetOr("near_duplicate_prob", Json(options.near_duplicate_prob))
            .AsDouble();
    options.required_fraction =
        spec.GetOr("required_fraction", Json(options.required_fraction))
            .AsDouble();
    return GenerateOpenImagesCorpus(options);
  }
  if (kind == "ecommerce") {
    EcommerceOptions options;
    options.num_products = static_cast<std::size_t>(
        spec.GetOr("num_products", 2000).AsInt());
    options.num_queries = static_cast<std::size_t>(
        spec.GetOr("num_queries", 60).AsInt());
    options.seed = static_cast<std::uint64_t>(spec.GetOr("seed", 7).AsInt());
    return GenerateEcommerceCorpus(options);
  }
  if (kind == "file") {
    return LoadCorpus(spec.Get("path").AsString());
  }
  throw ServiceError(ErrorCode::kBadRequest, "unknown corpus kind: " + kind);
}

Json StatsToJson(const IncrementalUpdateStats& stats) {
  Json out = Json::Object();
  out.Set("photos_added", stats.photos_added);
  out.Set("subsets_added", stats.subsets_added);
  out.Set("evicted_for_feasibility", stats.evicted_for_feasibility);
  out.Set("gain_evaluations", stats.gain_evaluations);
  out.Set("seconds", stats.seconds);
  return out;
}

/// Flight-recorder slots store raw const char*, so dynamic endpoint names
/// go through the process-lifetime intern table.
const char* EndpointLiteral(const std::string& endpoint) {
  return telemetry::InternedName(endpoint);
}

}  // namespace

void SlowRequestLog::Add(Json record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
  while (records_.size() > kMaxRecords) records_.pop_front();
}

Json SlowRequestLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json out = Json::Array();
  for (const Json& record : records_) out.Append(record);
  return out;
}

std::size_t SlowRequestLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

ServiceServer::ServiceServer(ServerOptions options)
    : options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity) {
  slow_request_ms_ = options_.slow_request_ms;
  if (slow_request_ms_ == 0.0) {
    if (const char* env = std::getenv("PHOCUS_SLOW_REQUEST_MS")) {
      slow_request_ms_ = std::strtod(env, nullptr);
    }
  }
  if (slow_request_ms_ < 0.0) slow_request_ms_ = 0.0;
}

ServiceServer::~ServiceServer() {
  RequestShutdown();
  if (started_.load()) {
    std::call_once(shutdown_once_, [this] { FinishShutdown(); });
  }
}

void ServiceServer::Start() {
  PHOCUS_CHECK(!started_.load(), "Start called twice");
  listener_ = std::make_unique<ListenSocket>(options_.host, options_.port);
  port_ = listener_->port();
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  started_.store(true);
  accept_thread_ = std::thread(&ServiceServer::AcceptLoop, this);
  PHOCUS_LOG(kInfo) << "phocusd listening on " << options_.host << ":"
                    << port_ << " (workers=" << pool_->num_threads()
                    << ", queue=" << options_.queue_capacity << ")";
}

void ServiceServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  if (!draining_.exchange(true)) {
    telemetry::FlightRecorder::Record("server.drain", "requested");
  }
  shutdown_cv_.notify_all();
}

void ServiceServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mutex_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  if (started_.load()) {
    std::call_once(shutdown_once_, [this] { FinishShutdown(); });
  }
}

void ServiceServer::FinishShutdown() {
  // Delay-only: widens the drain window so tests can race requests
  // against shutdown without an exception skipping the join logic below.
  PHOCUS_FAILPOINT_DELAY_ONLY("server.drain");
  if (listener_ != nullptr) listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain: connections running a request keep their sockets until the
  // response is written; idle ones are unblocked immediately.
  while (true) {
    bool all_done = true;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (const auto& connection : connections_) {
        if (connection->done.load()) continue;
        all_done = false;
        if (!connection->busy.load()) connection->socket.ShutdownBoth();
      }
    }
    if (all_done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  connections_.clear();
  telemetry::FlightRecorder::Record("server.drain", "drained");
  PHOCUS_LOG(kInfo) << "phocusd drained and stopped";
}

void ServiceServer::AcceptLoop() {
  auto& connection_counter =
      telemetry::MetricsRegistry::Current().GetCounter("service.connections");
  while (true) {
    Socket socket = listener_->Accept();
    if (!socket.valid()) break;  // listener shut down
    if (draining_.load()) continue;  // drop: the socket closes on scope exit
    connection_counter.Increment();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    // Reap connections whose threads already finished.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load()) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    connections_.push_back(std::make_unique<Connection>());
    Connection* connection = connections_.back().get();
    connection->socket = std::move(socket);
    connection->thread =
        std::thread(&ServiceServer::ServeConnection, this, connection);
  }
}

void ServiceServer::ServeConnection(Connection* connection) {
  auto& registry = telemetry::MetricsRegistry::Current();
  auto& bytes_in = registry.GetCounter("service.bytes_in");
  auto& bytes_out = registry.GetCounter("service.bytes_out");
  auto& respond_hist = registry.GetHistogram("service.respond_ns");
  FrameDecoder decoder(options_.max_frame_bytes);
  std::string chunk;
  try {
    while (true) {
      std::string frame;
      const FrameDecoder::Status status = decoder.Next(&frame);
      if (status == FrameDecoder::Status::kTooLarge) {
        const std::string encoded = EncodeFrame(MakeErrorResponse(
            0, ErrorCode::kFrameTooLarge,
            StrFormat("frame exceeds %zu bytes", decoder.max_frame_bytes())));
        connection->socket.SendAll(encoded);
        bytes_out.Add(encoded.size());
        break;
      }
      if (status == FrameDecoder::Status::kNeedMore) {
        // Drain closes the connection only here, between requests: frames
        // already buffered still get answers (a pipelined healthz observes
        // the "draining" status deterministically), but we never block for
        // new bytes once shutdown has begun.
        if (draining_.load()) break;
        chunk.clear();
        if (!connection->socket.RecvSome(&chunk)) break;  // clean EOF
        bytes_in.Add(chunk.size());
        decoder.Append(chunk);
        continue;
      }
      connection->busy.store(true);
      RequestObservation observation;
      Json response;
      try {
        response = Process(Json::Parse(frame), &observation);
      } catch (const failpoint::InjectedCrash&) {
        throw;  // simulated process death; the handler below plays it out
      } catch (const CheckFailure& failure) {
        // Unparseable request: no id to echo back.
        response = MakeErrorResponse(0, ErrorCode::kBadRequest, failure.what());
      }
      const std::string encoded = EncodeFrame(response);
      const Stopwatch respond_timer;
      connection->socket.SendAll(encoded);
      const std::uint64_t respond_ns = respond_timer.ElapsedNanos();
      bytes_out.Add(encoded.size());
      respond_hist.Record(static_cast<double>(respond_ns));
      FinishObservation(&observation, respond_ns);
      connection->busy.store(false);
    }
  } catch (const failpoint::InjectedCrash& crash) {
    // A crash failpoint simulates this serving thread dying mid-request.
    // Play the part: write the automatic flight dump exactly as the
    // std::terminate hook would, then drop the connection with no response
    // (the peer sees a dead server). This is the only place outside a
    // scenario harness allowed to stop an InjectedCrash from propagating —
    // letting it escape the connection thread would std::terminate the
    // whole daemon for a fault that tests inject deliberately.
    telemetry::FlightRecorder::Record("server.crash");
    telemetry::FlightRecorder::WriteCrashDump();
    PHOCUS_LOG(kError) << "injected crash on connection thread: "
                       << crash.what();
  } catch (const CheckFailure&) {
    // Peer vanished mid-read or mid-write; nothing left to answer.
  }
  // Half-close so the peer sees EOF now; the Connection (and its fd) is
  // reaped by the accept loop or at shutdown.
  connection->socket.ShutdownBoth();
  connection->busy.store(false);
  connection->done.store(true);
}

Json ServiceServer::Process(const Json& request,
                            RequestObservation* observation) {
  std::uint64_t id = 0;
  std::string endpoint;
  std::string request_id;
  Json params = Json::Object();
  try {
    id = static_cast<std::uint64_t>(request.GetOr("id", 0).AsInt());
    endpoint = request.Get("endpoint").AsString();
    request_id = request.GetOr("request_id", "").AsString();
    params = request.GetOr("params", Json::Object());
  } catch (const CheckFailure& failure) {
    return MakeErrorResponse(id, ErrorCode::kBadRequest, failure.what());
  }
  observation->endpoint = endpoint;
  observation->request_id = request_id;
  telemetry::FlightRecorder::Record("request.start",
                                    EndpointLiteral(endpoint), id);
  Json response = ProcessParsed(id, endpoint, params, request_id, observation);
  telemetry::FlightRecorder::Record(
      "request.end", EndpointLiteral(endpoint), id,
      response.GetOr("ok", false).AsBool() ? 1 : 0);
  // Echo the client's request id on every response shape (ok, rejection,
  // typed error) so client-side logs correlate with server-side spans.
  if (!request_id.empty()) response.Set("request_id", request_id);
  return response;
}

Json ServiceServer::ProcessParsed(std::uint64_t id,
                                  const std::string& endpoint,
                                  const Json& params,
                                  const std::string& request_id,
                                  RequestObservation* observation) {
  auto& registry = telemetry::MetricsRegistry::Current();
  registry.GetCounter("service.requests").Increment();

  // Control-plane endpoints bypass the queue: health checks, observability
  // reads and shutdown must succeed even when the data plane is saturated.
  if (endpoint == "ping") {
    Json result = Json::Object();
    result.Set("pong", true);
    return MakeOkResponse(id, std::move(result));
  }
  if (endpoint == "healthz") return MakeOkResponse(id, HandleHealthz());
  if (endpoint == "metrics") return MakeOkResponse(id, HandleMetrics());
  if (endpoint == "dump_flight") {
    return MakeOkResponse(id, telemetry::FlightRecorder::ToJson());
  }
  if (endpoint == "shutdown") {
    RequestShutdown();
    Json result = Json::Object();
    result.Set("draining", true);
    return MakeOkResponse(id, std::move(result));
  }
  if (endpoint == "debug_failpoint" && options_.enable_debug_endpoints) {
    // Remote failpoint control for chaos tests driving phocusd as a
    // subprocess (tests/cluster_test.cc): arm or disarm named failpoints
    // over the wire. Control-plane on purpose — it must work while
    // `server.admission` faults are armed, and during a drain, so a
    // scenario can always disarm what it armed.
    try {
      Json result = Json::Object();
      if (params.GetOr("deactivate_all", false).AsBool()) {
        failpoint::DeactivateAll();
        result.Set("armed", Json::Array());
        return MakeOkResponse(id, std::move(result));
      }
      if (params.Has("seed")) {
        failpoint::SetSeed(
            static_cast<std::uint64_t>(params.Get("seed").AsInt()));
      }
      const std::string name = params.Get("name").AsString();
      if (params.GetOr("deactivate", false).AsBool()) {
        result.Set("deactivated", failpoint::Deactivate(name));
      } else {
        failpoint::Configure(name, params.Get("spec").AsString());
      }
      Json armed = Json::Array();
      for (const std::string& armed_name : failpoint::ArmedNames()) {
        armed.Append(armed_name);
      }
      result.Set("armed", std::move(armed));
      return MakeOkResponse(id, std::move(result));
    } catch (const CheckFailure& failure) {
      return MakeErrorResponse(id, ErrorCode::kBadRequest, failure.what());
    }
  }

  // Admission control: reject instead of queueing without bound.
  if (draining_.load()) {
    registry.GetCounter("service.rejected.shutting_down").Increment();
    telemetry::FlightRecorder::Record("request.reject", "shutting_down", id);
    return MakeErrorResponse(id, ErrorCode::kShuttingDown,
                             "server is draining");
  }
  if (failpoint::AnyActive()) {
    // An injected admission fault surfaces as the typed overload rejection
    // a saturated queue would produce, so clients exercise that path
    // without needing queue_capacity concurrent requests in flight.
    const failpoint::Action action = failpoint::Evaluate("server.admission");
    if (action.kind == failpoint::ActionKind::kError ||
        action.kind == failpoint::ActionKind::kShortWrite) {
      registry.GetCounter("service.rejected.overloaded").Increment();
      telemetry::FlightRecorder::Record("request.reject", "overloaded", id);
      return MakeErrorResponse(id, ErrorCode::kOverloaded,
                               "injected admission rejection");
    }
    failpoint::Perform("server.admission", action);
  }
  const std::size_t admitted = admitted_.fetch_add(1);
  if (admitted >= options_.queue_capacity) {
    admitted_.fetch_sub(1);
    registry.GetCounter("service.rejected.overloaded").Increment();
    telemetry::FlightRecorder::Record("request.reject", "overloaded", id);
    return MakeErrorResponse(
        id, ErrorCode::kOverloaded,
        StrFormat("request queue full (%zu outstanding)",
                  options_.queue_capacity));
  }
  registry.GetGauge("service.queue_depth")
      .Set(static_cast<double>(admitted + 1));

  const double deadline_ms =
      params.GetOr("deadline_ms", Json(options_.default_deadline_ms))
          .AsDouble();
  const auto enqueue_time = std::chrono::steady_clock::now();

  std::promise<Json> promise;
  std::future<Json> future = promise.get_future();
  pool_->Submit([this, &registry, &promise, &params, &endpoint, &request_id,
                 observation, id, deadline_ms, enqueue_time] {
    Json response;
    // Delay-only (an exception here would escape the pool task before
    // promise.set_value and wedge the caller): stretches the apparent
    // queue wait so tests can force deadline expiry deterministically.
    PHOCUS_FAILPOINT_DELAY_ONLY("server.queue_wait");
    const std::uint64_t waited_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - enqueue_time)
            .count());
    const double waited_ms = static_cast<double>(waited_ns) / 1e6;
    registry.GetHistogram("service.queue_wait_ns")
        .Record(static_cast<double>(waited_ns));
    observation->queue_wait_ms = waited_ms;
    // Request-scoped tracing: roots finished on this thread inside the
    // scope land in the request-local collector, so the request's span
    // tree (cache lookup, solve, ...) is isolated from the process-global
    // one and can be attached to the slow-request log.
    telemetry::TraceCollector request_trace;
    {
      telemetry::ScopedTraceSink sink(&request_trace);
      telemetry::TraceSpan request_span("service.request");
      request_span.SetAttribute("endpoint", endpoint);
      if (!request_id.empty()) {
        request_span.SetAttribute("request_id", request_id);
      }
      if (deadline_ms > 0.0 && waited_ms > deadline_ms) {
        registry.GetCounter("service.rejected.deadline_exceeded").Increment();
        request_span.SetAttribute("deadline_expired", "true");
        response = MakeErrorResponse(
            id, ErrorCode::kDeadlineExceeded,
            StrFormat("request waited %.1fms past its %.1fms deadline",
                      waited_ms - deadline_ms, deadline_ms));
      } else {
        Stopwatch timer;
        try {
          response = MakeOkResponse(id, Handle(endpoint, params));
          registry.GetCounter("service.responses.ok").Increment();
        } catch (const ServiceError& error) {
          response = MakeErrorResponse(id, error.code(), error.message());
        } catch (const InfeasibleBudgetError& error) {
          response =
              MakeErrorResponse(id, ErrorCode::kInfeasible, error.what());
        } catch (const IngestOverloadedError& error) {
          // Must precede the CheckFailure arm (it derives CheckFailure):
          // backpressure is a typed, retryable condition, not a bad request.
          registry.GetCounter("service.rejected.ingest_overloaded")
              .Increment();
          telemetry::FlightRecorder::Record("request.reject",
                                            "ingest_overloaded", id);
          response = MakeErrorResponse(id, ErrorCode::kIngestOverloaded,
                                       error.what());
        } catch (const CheckFailure& failure) {
          response =
              MakeErrorResponse(id, ErrorCode::kBadRequest, failure.what());
        } catch (const std::exception& error) {
          response = MakeErrorResponse(id, ErrorCode::kInternal, error.what());
        }
        observation->handle_ms = timer.ElapsedMillis();
        registry.GetHistogram("service.endpoint." + endpoint + "_ns")
            .Record(static_cast<double>(timer.ElapsedNanos()));
      }
    }
    std::vector<telemetry::SpanRecord> roots = request_trace.Drain();
    if (!roots.empty()) {
      observation->tree = std::move(roots.front());
      // The time between admission and this task starting, as a synthetic
      // first child on the same timeline as the real spans.
      telemetry::SpanRecord wait;
      wait.name = "service.request.admission_wait";
      wait.duration_ns = waited_ns;
      wait.start_ns = observation->tree.start_ns > waited_ns
                          ? observation->tree.start_ns - waited_ns
                          : 0;
      observation->tree.children.insert(observation->tree.children.begin(),
                                        std::move(wait));
      observation->traced = true;
    }
    observation->handled = true;
    if (!response.GetOr("ok", false).AsBool()) {
      registry.GetCounter("service.responses.error").Increment();
    }
    promise.set_value(std::move(response));
  });
  Json response = future.get();
  const std::size_t remaining = admitted_.fetch_sub(1) - 1;
  registry.GetGauge("service.queue_depth").Set(static_cast<double>(remaining));
  return response;
}

void ServiceServer::FinishObservation(RequestObservation* observation,
                                      std::uint64_t respond_ns) {
  if (!observation->handled || slow_request_ms_ <= 0.0) return;
  const double respond_ms = static_cast<double>(respond_ns) / 1e6;
  const double total_ms =
      observation->queue_wait_ms + observation->handle_ms + respond_ms;
  if (total_ms < slow_request_ms_) return;
  telemetry::MetricsRegistry::Current()
      .GetCounter("service.slow_requests")
      .Increment();
  if (observation->traced) {
    // Response write happens after the request span closed; splice it into
    // the tree as a trailing child so the breakdown reads
    // admission wait -> handling -> respond.
    telemetry::SpanRecord respond;
    respond.name = "service.request.respond";
    respond.duration_ns = respond_ns;
    const std::uint64_t now_ns = telemetry::TraceNowNs();
    respond.start_ns = now_ns > respond_ns ? now_ns - respond_ns : 0;
    observation->tree.children.push_back(std::move(respond));
  }
  Json record = Json::Object();
  record.Set("request_id", observation->request_id);
  record.Set("endpoint", observation->endpoint);
  record.Set("total_ms", total_ms);
  record.Set("queue_wait_ms", observation->queue_wait_ms);
  record.Set("handle_ms", observation->handle_ms);
  record.Set("respond_ms", respond_ms);
  std::vector<telemetry::SpanRecord> spans;
  if (observation->traced) spans.push_back(observation->tree);
  record.Set("spans", telemetry::SpansToJson(spans));
  PHOCUS_LOG(kWarn) << "slow request " << observation->request_id << " ("
                    << observation->endpoint << "): "
                    << StrFormat("%.1fms total (queue %.1fms, handle %.1fms, "
                                 "respond %.1fms), threshold %.1fms",
                                 total_ms, observation->queue_wait_ms,
                                 observation->handle_ms, respond_ms,
                                 slow_request_ms_)
                    << (spans.empty()
                            ? std::string()
                            : "\n" + telemetry::RenderSpanTree(spans));
  slow_log_.Add(std::move(record));
}

std::shared_ptr<Session> ServiceServer::FindSession(const Json& params) const {
  const std::string id = params.Get("session").AsString();
  std::shared_ptr<Session> session = sessions_.Find(id);
  if (session == nullptr) {
    throw ServiceError(ErrorCode::kUnknownSession, "no such session: " + id);
  }
  return session;
}

Json ServiceServer::Handle(const std::string& endpoint, const Json& params) {
  if (endpoint == "create_session") return HandleCreateSession(params);
  if (endpoint == "session_info") return FindSession(params)->Describe();
  if (endpoint == "plan") return HandlePlan(params);
  if (endpoint == "update") return HandleUpdate(params);
  if (endpoint == "set_budget") return HandleSetBudget(params);
  if (endpoint == "ingest") return HandleIngest(params);
  if (endpoint == "ingest_flush") return HandleIngestFlush(params);
  if (endpoint == "coverage") {
    return FindSession(params)->Coverage(
        static_cast<std::size_t>(params.GetOr("top_k", 0).AsInt()));
  }
  if (endpoint == "explain") {
    return FindSession(params)->Explain(
        static_cast<PhotoId>(params.Get("photo").AsInt()));
  }
  if (endpoint == "archive_to_vault") return HandleArchiveToVault(params);
  if (endpoint == "close_session") {
    const bool closed = sessions_.Remove(params.Get("session").AsString());
    telemetry::MetricsRegistry::Current()
        .GetGauge("service.sessions")
        .Set(static_cast<double>(sessions_.size()));
    Json result = Json::Object();
    result.Set("closed", closed);
    return result;
  }
  if (endpoint == "stats") return HandleStats();
  if (endpoint == "debug_sleep" && options_.enable_debug_endpoints) {
    const double millis = params.GetOr("millis", 100).AsDouble();
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(millis));
    Json result = Json::Object();
    result.Set("slept_ms", millis);
    return result;
  }
  throw ServiceError(ErrorCode::kUnknownEndpoint,
                     "unknown endpoint: " + endpoint);
}

Json ServiceServer::HandleCreateSession(const Json& params) {
  std::shared_ptr<Session> session = sessions_.Create(CorpusFromParams(params));
  telemetry::MetricsRegistry::Current()
      .GetGauge("service.sessions")
      .Set(static_cast<double>(sessions_.size()));
  return session->Describe();
}

Json ServiceServer::HandlePlan(const Json& params) {
  std::shared_ptr<Session> session = FindSession(params);
  const ArchiveOptions options =
      OptionsFromParams(params, /*require_budget=*/true);
  const Session::PlanOutcome outcome = session->Plan(options, &plan_cache_);
  auto& registry = telemetry::MetricsRegistry::Current();
  registry
      .GetCounter(outcome.from_cache ? "service.plan_cache.hits"
                                     : "service.plan_cache.misses")
      .Increment();
  Json result = Json::Object();
  result.Set("session", session->id());
  result.Set("cached", outcome.from_cache);
  result.Set("fingerprint", session->Fingerprint());
  result.Set("plan", PlanToJson(*outcome.plan));
  return result;
}

Json ServiceServer::HandleUpdate(const Json& params) {
  std::shared_ptr<Session> session = FindSession(params);
  const ArchiveOptions options =
      OptionsFromParams(params, /*require_budget=*/false);
  const std::size_t count =
      static_cast<std::size_t>(params.Get("count").AsInt());
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.GetOr("seed", 1).AsInt());
  const Session::UpdateOutcome outcome =
      session->AddGeneratedPhotos(count, seed, options);
  Json result = Json::Object();
  result.Set("session", session->id());
  result.Set("stats", StatsToJson(outcome.stats));
  result.Set("plan", PlanToJson(*outcome.plan));
  return result;
}

Json ServiceServer::HandleSetBudget(const Json& params) {
  std::shared_ptr<Session> session = FindSession(params);
  const ArchiveOptions options =
      OptionsFromParams(params, /*require_budget=*/true);
  const Session::UpdateOutcome outcome =
      session->SetBudget(options.budget, options);
  Json result = Json::Object();
  result.Set("session", session->id());
  result.Set("stats", StatsToJson(outcome.stats));
  result.Set("plan", PlanToJson(*outcome.plan));
  return result;
}

namespace {

Json DriftToJson(const DriftEstimate& drift) {
  Json out = Json::Object();
  out.Set("stale_score", drift.stale_score);
  out.Set("upper_bound", drift.upper_bound);
  out.Set("drift", drift.drift);
  out.Set("relative_drift", drift.relative_drift);
  return out;
}

Session::IngestConfig IngestConfigFromParams(const Json& params) {
  Session::IngestConfig config;
  config.epsilon = params.GetOr("epsilon", Json(config.epsilon)).AsDouble();
  config.max_staleness_ms =
      params.GetOr("max_staleness_ms", Json(config.max_staleness_ms))
          .AsDouble();
  config.batch_photos = static_cast<std::size_t>(
      params.GetOr("batch_photos", static_cast<std::int64_t>(
                                       config.batch_photos))
          .AsInt());
  config.queue_photos = static_cast<std::size_t>(
      params.GetOr("queue_photos", static_cast<std::int64_t>(
                                       config.queue_photos))
          .AsInt());
  config.replan_every_batch =
      params.GetOr("per_batch", config.replan_every_batch).AsBool();
  config.budget_fraction =
      params.GetOr("budget_fraction", Json(config.budget_fraction)).AsDouble();
  config.backfill_members = static_cast<std::size_t>(
      params.GetOr("backfill_members", 0).AsInt());
  return config;
}

Json IngestResultToJson(const std::string& session_id,
                        const Session::IngestResult& ingest) {
  Json result = Json::Object();
  result.Set("session", session_id);
  result.Set("enqueued_photos", ingest.outcome.enqueued_photos);
  result.Set("pending_photos", ingest.outcome.pending_photos);
  result.Set("absorbed", ingest.outcome.absorbed);
  result.Set("replanned", ingest.outcome.replanned);
  result.Set("reason", ingest.outcome.reason);
  result.Set("num_photos", ingest.num_photos);
  result.Set("replans", ingest.replans);
  result.Set("replans_skipped", ingest.replans_skipped);
  result.Set("drift_evals", ingest.drift_evals);
  if (ingest.outcome.drift_evaluated) {
    result.Set("drift", DriftToJson(ingest.outcome.drift));
  }
  if (ingest.outcome.replanned) {
    result.Set("stats", StatsToJson(ingest.outcome.stats));
    result.Set("plan", PlanToJson(*ingest.plan));
  }
  return result;
}

}  // namespace

Json ServiceServer::HandleIngest(const Json& params) {
  std::shared_ptr<Session> session = FindSession(params);
  const ArchiveOptions options =
      OptionsFromParams(params, /*require_budget=*/false);
  const std::size_t count =
      static_cast<std::size_t>(params.Get("count").AsInt());
  const std::uint64_t seed =
      static_cast<std::uint64_t>(params.GetOr("seed", 1).AsInt());
  const Session::IngestResult ingest = session->Ingest(
      count, seed, options, IngestConfigFromParams(params),
      options_.ingest_now_ms);
  return IngestResultToJson(session->id(), ingest);
}

Json ServiceServer::HandleIngestFlush(const Json& params) {
  std::shared_ptr<Session> session = FindSession(params);
  return IngestResultToJson(session->id(), session->IngestFlush());
}

Json ServiceServer::HandleArchiveToVault(const Json& params) {
  std::shared_ptr<Session> session = FindSession(params);
  const std::string directory = params.Get("directory").AsString();
  const int render_size = static_cast<int>(
      params.GetOr("render_size", 64).AsInt());
  return session->ArchiveToVault(directory, render_size);
}

Json ServiceServer::HandleStats() {
  Json result = Json::Object();
  result.Set("queue_depth", admitted_.load());
  result.Set("queue_capacity", options_.queue_capacity);
  result.Set("sessions", sessions_.size());
  Json cache = Json::Object();
  cache.Set("size", plan_cache_.size());
  cache.Set("capacity", plan_cache_.capacity());
  cache.Set("hits", plan_cache_.hits());
  cache.Set("misses", plan_cache_.misses());
  result.Set("plan_cache", std::move(cache));
  result.Set("metrics",
             telemetry::MetricsToJson(
                 telemetry::MetricsRegistry::Current().Snapshot()));
  return result;
}

Json ServiceServer::HandleMetrics() {
  Json server = Json::Object();
  server.Set("queue_depth", admitted_.load());
  server.Set("queue_capacity", options_.queue_capacity);
  server.Set("sessions", sessions_.size());
  server.Set("draining", draining_.load());
  server.Set("slow_request_ms", slow_request_ms_);
  Json cache = Json::Object();
  cache.Set("size", plan_cache_.size());
  cache.Set("capacity", plan_cache_.capacity());
  cache.Set("hits", plan_cache_.hits());
  cache.Set("misses", plan_cache_.misses());
  server.Set("plan_cache", std::move(cache));
  Json result = Json::Object();
  result.Set("server", std::move(server));
  result.Set("metrics",
             telemetry::MetricsToJson(
                 telemetry::MetricsRegistry::Current().Snapshot()));
  result.Set("slow_requests", slow_log_.Snapshot());
  return result;
}

Json ServiceServer::HandleHealthz() {
  const std::size_t depth = admitted_.load();
  const std::size_t capacity = options_.queue_capacity;
  const double saturation =
      capacity == 0 ? 1.0
                    : static_cast<double>(depth) / static_cast<double>(capacity);
  const bool draining = draining_.load();
  Json result = Json::Object();
  result.Set("status", draining      ? "draining"
                       : saturation >= 1.0 ? "overloaded"
                                           : "ok");
  result.Set("draining", draining);
  result.Set("queue_depth", depth);
  result.Set("queue_capacity", capacity);
  result.Set("admission_saturation", saturation);
  result.Set("sessions", sessions_.size());
  Json tele = Json::Object();
  tele.Set("compiled", telemetry::kCompiled);
  tele.Set("enabled", telemetry::Enabled());
  result.Set("telemetry", std::move(tele));
  return result;
}

}  // namespace service
}  // namespace phocus
