#include "service/protocol.h"

#include <cstring>

#include "util/strings.h"

namespace phocus {
namespace service {

std::string EncodeFrame(std::string_view payload) {
  PHOCUS_CHECK(payload.size() <= 0xffffffffull, "frame payload above 4GiB");
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((length >> 24) & 0xff));
  frame.push_back(static_cast<char>((length >> 16) & 0xff));
  frame.push_back(static_cast<char>((length >> 8) & 0xff));
  frame.push_back(static_cast<char>(length & 0xff));
  frame.append(payload);
  return frame;
}

std::string EncodeFrame(const Json& message) {
  const std::string payload = message.Dump();
  return EncodeFrame(std::string_view(payload));
}

FrameDecoder::Status FrameDecoder::Next(std::string* frame) {
  if (buffer_.size() < kFrameHeaderBytes) return Status::kNeedMore;
  const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
  const std::uint32_t length = (static_cast<std::uint32_t>(bytes[0]) << 24) |
                               (static_cast<std::uint32_t>(bytes[1]) << 16) |
                               (static_cast<std::uint32_t>(bytes[2]) << 8) |
                               static_cast<std::uint32_t>(bytes[3]);
  if (length > max_frame_bytes_) return Status::kTooLarge;
  if (buffer_.size() < kFrameHeaderBytes + length) return Status::kNeedMore;
  frame->assign(buffer_, kFrameHeaderBytes, length);
  buffer_.erase(0, kFrameHeaderBytes + length);
  return Status::kFrame;
}

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownEndpoint: return "unknown_endpoint";
    case ErrorCode::kUnknownSession: return "unknown_session";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kIngestOverloaded: return "ingest_overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kShardUnavailable: return "shard_unavailable";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

ErrorCode ErrorCodeFromName(std::string_view name) {
  static constexpr ErrorCode kAll[] = {
      ErrorCode::kBadRequest,      ErrorCode::kUnknownEndpoint,
      ErrorCode::kUnknownSession,  ErrorCode::kInfeasible,
      ErrorCode::kOverloaded,      ErrorCode::kIngestOverloaded,
      ErrorCode::kDeadlineExceeded,
      ErrorCode::kShuttingDown,    ErrorCode::kFrameTooLarge,
      ErrorCode::kShardUnavailable, ErrorCode::kInternal};
  for (ErrorCode code : kAll) {
    if (ErrorCodeName(code) == name) return code;
  }
  return ErrorCode::kInternal;
}

Json MakeRequest(std::uint64_t id, const std::string& endpoint, Json params) {
  Json request = Json::Object();
  request.Set("id", id);
  request.Set("endpoint", endpoint);
  request.Set("params", std::move(params));
  return request;
}

Json MakeOkResponse(std::uint64_t id, Json result) {
  Json response = Json::Object();
  response.Set("id", id);
  response.Set("ok", true);
  response.Set("result", std::move(result));
  return response;
}

Json MakeErrorResponse(std::uint64_t id, ErrorCode code,
                       const std::string& message) {
  Json error = Json::Object();
  error.Set("code", std::string(ErrorCodeName(code)));
  error.Set("message", message);
  Json response = Json::Object();
  response.Set("id", id);
  response.Set("ok", false);
  response.Set("error", std::move(error));
  return response;
}

Json PlanToJson(const ArchivePlan& plan) {
  Json out = Json::Object();
  Json solver = Json::Object();
  solver.Set("name", plan.solver_result.solver_name);
  solver.Set("exact", plan.solver_result.exact);
  solver.Set("detail", plan.solver_result.detail);
  out.Set("solver", std::move(solver));
  Json retained = Json::Array();
  for (PhotoId p : plan.retained) retained.Append(Json(p));
  out.Set("retained", std::move(retained));
  Json archived = Json::Array();
  for (PhotoId p : plan.archived) archived.Append(Json(p));
  out.Set("archived", std::move(archived));
  out.Set("retained_bytes", plan.retained_bytes);
  out.Set("archived_bytes", plan.archived_bytes);
  out.Set("score", plan.score);
  out.Set("max_score", plan.max_score);
  out.Set("score_fraction", plan.score_fraction);
  Json bound = Json::Object();
  bound.Set("solution_score", plan.online_bound.solution_score);
  bound.Set("upper_bound", plan.online_bound.upper_bound);
  bound.Set("certified_ratio", plan.online_bound.certified_ratio);
  out.Set("online_bound", std::move(bound));
  Json coverage = Json::Array();
  for (const SubsetCoverage& row : plan.subset_coverage) {
    Json entry = Json::Object();
    entry.Set("subset", row.name);
    entry.Set("weight", row.weight);
    entry.Set("coverage", row.coverage);
    entry.Set("retained_members", row.retained_members);
    entry.Set("total_members", row.total_members);
    coverage.Append(std::move(entry));
  }
  out.Set("coverage", std::move(coverage));
  return out;
}

std::string CanonicalOptionsKey(const ArchiveOptions& options) {
  const RepresentationOptions& repr = options.representation;
  return StrFormat(
      "budget=%llu;ctx=%d;exif=%.17g;tau=%.17g;lsh=%zu/%d/%llu;bound=%d;"
      "rows=%zu",
      static_cast<unsigned long long>(options.budget),
      options.representation.context_normalize ? 1 : 0, repr.exif_weight,
      repr.sparsify_tau, repr.lsh_min_subset_size, repr.lsh_num_bits,
      static_cast<unsigned long long>(repr.lsh_seed),
      options.compute_online_bound ? 1 : 0, options.coverage_rows);
}

std::uint64_t Fnv64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace service
}  // namespace phocus
