#ifndef PHOCUS_IMAGING_OPS_H_
#define PHOCUS_IMAGING_OPS_H_

#include <vector>

#include "imaging/raster.h"

/// \file ops.h
/// Basic image processing kernels: resize, blur, gradients, Laplacian.
/// These feed the quality metrics and the HOG/texture descriptors.

namespace phocus {

/// Bilinear resize of an RGB image.
Image ResizeBilinear(const Image& image, int new_width, int new_height);

/// Bilinear resize of a float plane.
Plane ResizeBilinear(const Plane& plane, int new_width, int new_height);

/// Separable Gaussian blur with the given sigma (kernel radius = ceil(3σ)).
Plane GaussianBlur(const Plane& plane, double sigma);

/// Sobel gradients; outputs per-pixel dx and dy planes.
void SobelGradients(const Plane& plane, Plane* dx, Plane* dy);

/// 4-neighbour Laplacian.
Plane Laplacian(const Plane& plane);

/// Per-pixel gradient magnitude sqrt(dx²+dy²).
Plane GradientMagnitude(const Plane& plane);

/// Converts RGB in [0,255] to HSV with h in [0,360), s,v in [0,1].
void RgbToHsv(Rgb pixel, float* h, float* s, float* v);

}  // namespace phocus

#endif  // PHOCUS_IMAGING_OPS_H_
