#ifndef PHOCUS_IMAGING_PPM_IO_H_
#define PHOCUS_IMAGING_PPM_IO_H_

#include <string>

#include "imaging/raster.h"

/// \file ppm_io.h
/// Binary PPM (P6) / PGM (P5) reading and writing — the repository's
/// dependency-free image interchange format (examples dump selected photos
/// so a user can eyeball them).

namespace phocus {

/// Writes `image` as binary PPM (P6).
void WritePpm(const std::string& path, const Image& image);

/// Reads a binary PPM (P6) file. Throws CheckFailure on malformed input.
Image ReadPpm(const std::string& path);

/// Writes a float plane as binary PGM (P5); values are clamped to [0, 255].
void WritePgm(const std::string& path, const Plane& plane);

/// Serializes to an in-memory PPM byte string (used by tests).
std::string EncodePpm(const Image& image);

/// Parses an in-memory PPM byte string.
Image DecodePpm(const std::string& bytes);

}  // namespace phocus

#endif  // PHOCUS_IMAGING_PPM_IO_H_
