#include "imaging/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace phocus {

namespace {

inline float Lerp(float a, float b, float t) { return a + (b - a) * t; }

}  // namespace

Image ResizeBilinear(const Image& image, int new_width, int new_height) {
  PHOCUS_CHECK(!image.empty(), "cannot resize an empty image");
  PHOCUS_CHECK(new_width > 0 && new_height > 0, "bad resize dimensions");
  Image out(new_width, new_height);
  const float x_scale = static_cast<float>(image.width()) / new_width;
  const float y_scale = static_cast<float>(image.height()) / new_height;
  for (int y = 0; y < new_height; ++y) {
    const float sy = (y + 0.5f) * y_scale - 0.5f;
    const int y0 = static_cast<int>(std::floor(sy));
    const float ty = sy - y0;
    for (int x = 0; x < new_width; ++x) {
      const float sx = (x + 0.5f) * x_scale - 0.5f;
      const int x0 = static_cast<int>(std::floor(sx));
      const float tx = sx - x0;
      const Rgb p00 = image.AtClamped(x0, y0);
      const Rgb p10 = image.AtClamped(x0 + 1, y0);
      const Rgb p01 = image.AtClamped(x0, y0 + 1);
      const Rgb p11 = image.AtClamped(x0 + 1, y0 + 1);
      auto blend = [&](std::uint8_t a, std::uint8_t b, std::uint8_t c,
                       std::uint8_t d) {
        const float top = Lerp(a, b, tx);
        const float bottom = Lerp(c, d, tx);
        return static_cast<std::uint8_t>(
            std::clamp(Lerp(top, bottom, ty) + 0.5f, 0.0f, 255.0f));
      };
      out.At(x, y) = Rgb{blend(p00.r, p10.r, p01.r, p11.r),
                         blend(p00.g, p10.g, p01.g, p11.g),
                         blend(p00.b, p10.b, p01.b, p11.b)};
    }
  }
  return out;
}

Plane ResizeBilinear(const Plane& plane, int new_width, int new_height) {
  PHOCUS_CHECK(!plane.empty(), "cannot resize an empty plane");
  PHOCUS_CHECK(new_width > 0 && new_height > 0, "bad resize dimensions");
  Plane out(new_width, new_height);
  const float x_scale = static_cast<float>(plane.width()) / new_width;
  const float y_scale = static_cast<float>(plane.height()) / new_height;
  for (int y = 0; y < new_height; ++y) {
    const float sy = (y + 0.5f) * y_scale - 0.5f;
    const int y0 = static_cast<int>(std::floor(sy));
    const float ty = sy - y0;
    for (int x = 0; x < new_width; ++x) {
      const float sx = (x + 0.5f) * x_scale - 0.5f;
      const int x0 = static_cast<int>(std::floor(sx));
      const float tx = sx - x0;
      const float top = Lerp(plane.AtClamped(x0, y0), plane.AtClamped(x0 + 1, y0), tx);
      const float bottom =
          Lerp(plane.AtClamped(x0, y0 + 1), plane.AtClamped(x0 + 1, y0 + 1), tx);
      out.At(x, y) = Lerp(top, bottom, ty);
    }
  }
  return out;
}

Plane GaussianBlur(const Plane& plane, double sigma) {
  PHOCUS_CHECK(sigma > 0.0, "Gaussian sigma must be positive");
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float total = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    const float w = static_cast<float>(std::exp(-0.5 * (i * i) / (sigma * sigma)));
    kernel[static_cast<std::size_t>(i + radius)] = w;
    total += w;
  }
  for (float& w : kernel) w /= total;

  Plane horizontal(plane.width(), plane.height());
  for (int y = 0; y < plane.height(); ++y) {
    for (int x = 0; x < plane.width(); ++x) {
      float acc = 0.0f;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] * plane.AtClamped(x + i, y);
      }
      horizontal.At(x, y) = acc;
    }
  }
  Plane out(plane.width(), plane.height());
  for (int y = 0; y < plane.height(); ++y) {
    for (int x = 0; x < plane.width(); ++x) {
      float acc = 0.0f;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] *
               horizontal.AtClamped(x, y + i);
      }
      out.At(x, y) = acc;
    }
  }
  return out;
}

void SobelGradients(const Plane& plane, Plane* dx, Plane* dy) {
  PHOCUS_CHECK(dx != nullptr && dy != nullptr, "output planes must be non-null");
  *dx = Plane(plane.width(), plane.height());
  *dy = Plane(plane.width(), plane.height());
  for (int y = 0; y < plane.height(); ++y) {
    for (int x = 0; x < plane.width(); ++x) {
      const float p00 = plane.AtClamped(x - 1, y - 1);
      const float p10 = plane.AtClamped(x, y - 1);
      const float p20 = plane.AtClamped(x + 1, y - 1);
      const float p01 = plane.AtClamped(x - 1, y);
      const float p21 = plane.AtClamped(x + 1, y);
      const float p02 = plane.AtClamped(x - 1, y + 1);
      const float p12 = plane.AtClamped(x, y + 1);
      const float p22 = plane.AtClamped(x + 1, y + 1);
      dx->At(x, y) = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
      dy->At(x, y) = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
    }
  }
}

Plane Laplacian(const Plane& plane) {
  Plane out(plane.width(), plane.height());
  for (int y = 0; y < plane.height(); ++y) {
    for (int x = 0; x < plane.width(); ++x) {
      out.At(x, y) = plane.AtClamped(x - 1, y) + plane.AtClamped(x + 1, y) +
                     plane.AtClamped(x, y - 1) + plane.AtClamped(x, y + 1) -
                     4.0f * plane.At(x, y);
    }
  }
  return out;
}

Plane GradientMagnitude(const Plane& plane) {
  Plane dx, dy;
  SobelGradients(plane, &dx, &dy);
  Plane out(plane.width(), plane.height());
  for (int y = 0; y < plane.height(); ++y) {
    for (int x = 0; x < plane.width(); ++x) {
      out.At(x, y) = std::sqrt(dx.At(x, y) * dx.At(x, y) + dy.At(x, y) * dy.At(x, y));
    }
  }
  return out;
}

void RgbToHsv(Rgb pixel, float* h, float* s, float* v) {
  const float r = pixel.r / 255.0f;
  const float g = pixel.g / 255.0f;
  const float b = pixel.b / 255.0f;
  const float maxc = std::max({r, g, b});
  const float minc = std::min({r, g, b});
  const float delta = maxc - minc;
  *v = maxc;
  *s = maxc > 0.0f ? delta / maxc : 0.0f;
  if (delta <= 0.0f) {
    *h = 0.0f;
    return;
  }
  float hue;
  if (maxc == r) {
    hue = 60.0f * std::fmod((g - b) / delta, 6.0f);
  } else if (maxc == g) {
    hue = 60.0f * ((b - r) / delta + 2.0f);
  } else {
    hue = 60.0f * ((r - g) / delta + 4.0f);
  }
  if (hue < 0.0f) hue += 360.0f;
  *h = hue;
}

}  // namespace phocus
