#include "imaging/raster.h"

#include <algorithm>

#include "util/logging.h"

namespace phocus {

Image::Image(int width, int height, Rgb fill)
    : width_(width), height_(height) {
  PHOCUS_CHECK(width > 0 && height > 0, "image dimensions must be positive");
  data_.assign(static_cast<std::size_t>(width) * height, fill);
}

const Rgb& Image::AtClamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return At(x, y);
}

Plane::Plane(int width, int height, float fill)
    : width_(width), height_(height) {
  PHOCUS_CHECK(width > 0 && height > 0, "plane dimensions must be positive");
  data_.assign(static_cast<std::size_t>(width) * height, fill);
}

float Plane::AtClamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return At(x, y);
}

float Luma(Rgb pixel) {
  return 0.299f * pixel.r + 0.587f * pixel.g + 0.114f * pixel.b;
}

Plane ToLuma(const Image& image) {
  Plane plane(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      plane.At(x, y) = Luma(image.At(x, y));
    }
  }
  return plane;
}

}  // namespace phocus
