#include "imaging/quality.h"

#include <algorithm>
#include <cmath>

#include "imaging/ops.h"
#include "util/logging.h"

namespace phocus {

namespace {

/// Maps an unbounded nonnegative score into [0, 1) with half-saturation at
/// `half`: x / (x + half).
double Saturate(double x, double half) { return x / (x + half); }

}  // namespace

double LaplacianVariance(const Image& image) {
  const Plane luma = ToLuma(image);
  const Plane lap = Laplacian(luma);
  double mean = 0.0;
  for (float v : lap.values()) mean += v;
  mean /= static_cast<double>(lap.values().size());
  double var = 0.0;
  for (float v : lap.values()) var += (v - mean) * (v - mean);
  return var / static_cast<double>(lap.values().size());
}

double NoiseResidual(const Image& image) {
  const Plane luma = ToLuma(image);
  const Plane smooth = GaussianBlur(luma, 0.8);
  double residual = 0.0;
  for (std::size_t i = 0; i < luma.values().size(); ++i) {
    residual += std::abs(luma.values()[i] - smooth.values()[i]);
  }
  return residual / static_cast<double>(luma.values().size());
}

QualityReport AssessQuality(const Image& image) {
  PHOCUS_CHECK(!image.empty(), "cannot assess an empty image");
  QualityReport report;

  report.sharpness = Saturate(LaplacianVariance(image), 150.0);

  const Plane luma = ToLuma(image);
  double mean = 0.0;
  for (float v : luma.values()) mean += v;
  mean /= static_cast<double>(luma.values().size());
  double var = 0.0;
  for (float v : luma.values()) var += (v - mean) * (v - mean);
  const double stddev = std::sqrt(var / static_cast<double>(luma.values().size()));
  report.contrast = Saturate(stddev, 32.0);

  report.exposure = 1.0 - std::abs(mean - 128.0) / 128.0;

  report.noise = 1.0 - Saturate(NoiseResidual(image), 12.0);

  const double pixels = static_cast<double>(image.width()) * image.height();
  report.resolution = std::min(1.0, pixels / (256.0 * 256.0));

  report.overall = 0.35 * report.sharpness + 0.2 * report.contrast +
                   0.15 * report.exposure + 0.15 * report.noise +
                   0.15 * report.resolution;
  return report;
}

}  // namespace phocus
