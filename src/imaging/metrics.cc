#include "imaging/metrics.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace phocus {

double Psnr(const Image& a, const Image& b) {
  PHOCUS_CHECK(a.width() == b.width() && a.height() == b.height(),
               "PSNR requires equal dimensions");
  PHOCUS_CHECK(!a.empty(), "PSNR of empty images");
  double sum_squared = 0.0;
  for (std::size_t i = 0; i < a.pixels().size(); ++i) {
    const Rgb pa = a.pixels()[i];
    const Rgb pb = b.pixels()[i];
    const double dr = static_cast<double>(pa.r) - pb.r;
    const double dg = static_cast<double>(pa.g) - pb.g;
    const double db = static_cast<double>(pa.b) - pb.b;
    sum_squared += dr * dr + dg * dg + db * db;
  }
  const double mse =
      sum_squared / (3.0 * static_cast<double>(a.pixels().size()));
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double Ssim(const Image& a, const Image& b) {
  PHOCUS_CHECK(a.width() == b.width() && a.height() == b.height(),
               "SSIM requires equal dimensions");
  PHOCUS_CHECK(a.width() >= 8 && a.height() >= 8,
               "SSIM requires at least 8x8 images");
  const Plane luma_a = ToLuma(a);
  const Plane luma_b = ToLuma(b);
  constexpr double kC1 = (0.01 * 255) * (0.01 * 255);
  constexpr double kC2 = (0.03 * 255) * (0.03 * 255);

  double total = 0.0;
  std::size_t windows = 0;
  for (int wy = 0; wy + 8 <= a.height(); wy += 8) {
    for (int wx = 0; wx + 8 <= a.width(); wx += 8) {
      double mean_a = 0, mean_b = 0;
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          mean_a += luma_a.At(wx + x, wy + y);
          mean_b += luma_b.At(wx + x, wy + y);
        }
      }
      mean_a /= 64.0;
      mean_b /= 64.0;
      double var_a = 0, var_b = 0, covariance = 0;
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          const double da = luma_a.At(wx + x, wy + y) - mean_a;
          const double db = luma_b.At(wx + x, wy + y) - mean_b;
          var_a += da * da;
          var_b += db * db;
          covariance += da * db;
        }
      }
      var_a /= 63.0;
      var_b /= 63.0;
      covariance /= 63.0;
      const double ssim =
          ((2 * mean_a * mean_b + kC1) * (2 * covariance + kC2)) /
          ((mean_a * mean_a + mean_b * mean_b + kC1) * (var_a + var_b + kC2));
      total += ssim;
      ++windows;
    }
  }
  return total / static_cast<double>(windows);
}

}  // namespace phocus
