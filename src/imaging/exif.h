#ifndef PHOCUS_IMAGING_EXIF_H_
#define PHOCUS_IMAGING_EXIF_H_

#include <cstdint>
#include <string>

#include "util/rng.h"

/// \file exif.h
/// EXIF-like capture metadata. The paper's Data Representation Module
/// derives photo attributes "including, e.g., reading the EXIF metadata"
/// (§5.1); the contextual similarity combines visual descriptors with these
/// quantitative/categorical attributes.

namespace phocus {

struct ExifMetadata {
  std::int64_t timestamp_unix = 0;  ///< capture time (seconds since epoch)
  std::string camera_model;
  int iso = 100;
  double exposure_ms = 10.0;
  double focal_mm = 35.0;
  double latitude = 0.0;
  double longitude = 0.0;

  /// Normalized distance in [0, 1] between two captures combining time,
  /// location and device (used as the categorical half of photo distance).
  static double Distance(const ExifMetadata& a, const ExifMetadata& b);
};

/// Samples plausible metadata; captures drawn from the same `event_center`
/// cluster in time/space, mimicking photos from one shoot/trip.
ExifMetadata SampleExif(Rng& rng, std::int64_t event_center_unix,
                        double event_latitude, double event_longitude);

}  // namespace phocus

#endif  // PHOCUS_IMAGING_EXIF_H_
