#ifndef PHOCUS_IMAGING_SCENE_H_
#define PHOCUS_IMAGING_SCENE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "imaging/raster.h"
#include "util/rng.h"

/// \file scene.h
/// Procedural photo synthesis — the stand-in for real photo corpora.
///
/// The paper evaluates on Open Images photos and XYZ product images; neither
/// is available offline, so we synthesize photos whose *embedding geometry*
/// has the properties the PAR algorithms exploit: photos of one category
/// cluster together, near-duplicates are very close, and unrelated photos are
/// far apart. A `SceneStyle` (derived deterministically from a category
/// name) fixes a palette and shape vocabulary; each photo is a `SceneParams`
/// sample from the style; near-duplicates are small jitters of an existing
/// sample.

namespace phocus {

/// One drawable primitive.
struct SceneShape {
  enum class Kind { kCircle, kRectangle, kTriangle, kRing, kStripe };
  Kind kind = Kind::kCircle;
  float center_x = 0.5f;  ///< in [0,1] image coordinates
  float center_y = 0.5f;
  float size = 0.25f;     ///< radius / half-extent, fraction of min dimension
  float angle = 0.0f;     ///< radians
  Rgb color;
};

/// The deterministic category "look".
struct SceneStyle {
  std::string category;
  float base_hue = 0.0f;        ///< degrees, anchors the palette
  float hue_spread = 30.0f;     ///< palette width, degrees
  float texture_amount = 0.2f;  ///< stripes/noise business, in [0,1]
  int min_shapes = 2;
  int max_shapes = 5;
  std::vector<SceneShape::Kind> shape_vocabulary;
};

/// A fully-specified renderable photo.
struct SceneParams {
  Rgb background_top;
  Rgb background_bottom;
  std::vector<SceneShape> shapes;
  float noise_sigma = 2.0f;    ///< additive Gaussian pixel noise
  float blur_sigma = 0.0f;     ///< 0 disables; simulates defocus
  float brightness = 1.0f;     ///< exposure multiplier
  std::uint64_t noise_seed = 0;
};

/// Deterministically derives a category's style from its name.
SceneStyle StyleForCategory(const std::string& category);

/// Samples one photo's parameters from a style.
SceneParams SampleScene(const SceneStyle& style, Rng& rng);

/// Produces a near-duplicate: each parameter perturbed by at most `amount`
/// (0 = identical, 1 = fully resampled-scale perturbation).
SceneParams JitterScene(const SceneParams& params, Rng& rng, double amount);

/// Rasterizes the scene at the given resolution. Deterministic.
Image RenderScene(const SceneParams& params, int width, int height);

/// HSV→RGB helper used by the palette machinery (h in [0,360), s,v in [0,1]).
Rgb HsvToRgb(float h, float s, float v);

}  // namespace phocus

#endif  // PHOCUS_IMAGING_SCENE_H_
