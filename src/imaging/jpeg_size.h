#ifndef PHOCUS_IMAGING_JPEG_SIZE_H_
#define PHOCUS_IMAGING_JPEG_SIZE_H_

#include <cstdint>

#include "imaging/raster.h"

/// \file jpeg_size.h
/// Content-dependent compressed-size estimation — the PAR cost model C(p).
///
/// The estimator performs a real (simplified) JPEG front-end: 8×8 blockwise
/// DCT on luma and 2×2-subsampled chroma, quantization with the Annex-K
/// tables scaled by a quality factor, then an entropy estimate of the
/// quantized coefficients (magnitude-category bits plus per-nonzero run
/// overhead, as in baseline Huffman coding). The result tracks the real
/// behaviour that matters to PAR: busy, high-frequency photos cost several
/// times more bytes than flat ones of the same dimensions — which is what
/// makes the cost-benefit (CB) greedy variant diverge from unit-cost (UC).

namespace phocus {

struct JpegSizeOptions {
  /// libjpeg-style quality in [1, 100]; scales the quantization tables.
  int quality = 85;
  /// The raster may stand in for a higher-resolution original: estimated
  /// bytes scale by this factor squared (entropy-per-pixel is resolution
  /// dependent only weakly).
  double resolution_scale = 1.0;
};

/// Estimates the encoded JPEG size of `image` in bytes.
std::uint64_t EstimateJpegBytes(const Image& image,
                                const JpegSizeOptions& options = {});

/// Forward 8×8 DCT-II of a block (row-major, 64 floats), exposed for tests.
void ForwardDct8x8(const float input[64], float output[64]);

/// Inverse of ForwardDct8x8 (orthonormal DCT-III).
void InverseDct8x8(const float input[64], float output[64]);

/// Applies the lossy part of JPEG to an image and returns the degraded
/// result: YCbCr conversion with 4:2:0 chroma subsampling, 8×8 blockwise
/// DCT, quantization at `quality` (Annex-K tables, libjpeg scaling),
/// dequantization, inverse DCT, and reassembly. This is what a photo
/// *looks like* after being kept at a lower compression level — used to
/// calibrate the §6 compression-variant value factors from pixels (see
/// phocus/compression_calibration.h).
Image SimulateJpegRoundTrip(const Image& image, int quality);

}  // namespace phocus

#endif  // PHOCUS_IMAGING_JPEG_SIZE_H_
