#include "imaging/jpeg_size.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "imaging/ops.h"
#include "kernels/kernels.h"
#include "util/logging.h"

namespace phocus {

namespace {

// JPEG Annex K quantization tables.
constexpr int kLumaQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,  //
    12, 12, 14, 19, 26,  58,  60,  55,  //
    14, 13, 16, 24, 40,  57,  69,  56,  //
    14, 17, 22, 29, 51,  87,  80,  62,  //
    18, 22, 37, 56, 68,  109, 103, 77,  //
    24, 35, 55, 64, 81,  104, 113, 92,  //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99};

constexpr int kChromaQuant[64] = {
    17, 18, 24, 47, 99, 99, 99, 99,  //
    18, 21, 26, 66, 99, 99, 99, 99,  //
    24, 26, 56, 99, 99, 99, 99, 99,  //
    47, 66, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99,  //
    99, 99, 99, 99, 99, 99, 99, 99};

/// libjpeg quality scaling: quality -> table multiplier.
int ScaleQuant(int base, int quality) {
  int scale;
  if (quality < 50) {
    scale = 5000 / quality;
  } else {
    scale = 200 - quality * 2;
  }
  int q = (base * scale + 50) / 100;
  return std::clamp(q, 1, 255);
}

/// Bits needed for a JPEG magnitude category of value v (size of |v|).
int MagnitudeBits(int v) {
  int magnitude = std::abs(v);
  int bits = 0;
  while (magnitude > 0) {
    ++bits;
    magnitude >>= 1;
  }
  return bits;
}

/// Scales a base quantization table for `quality`, once per plane (this
/// used to run per coefficient per block). `qtab` feeds the quantize
/// kernel's float division; `qint` the exact integer dequantization.
void BuildQuantTables(const int quant[64], int quality, float qtab[64],
                      int qint[64]) {
  for (int i = 0; i < 64; ++i) {
    qint[i] = ScaleQuant(quant[i], quality);
    qtab[i] = static_cast<float>(qint[i]);
  }
}

/// Estimates entropy-coded bits for one quantized 8×8 block: for each
/// nonzero AC coefficient we charge its magnitude-category bits plus an
/// average 4-bit run/size Huffman prefix; the DC delta is charged similarly.
double BlockBits(const float dct[64], const float qtab[64], int* dc_out,
                 int prev_dc) {
  std::int32_t coefficients[64];
  kernels::QuantizeBlock8x8(dct, qtab, coefficients);
  const int dc = static_cast<int>(coefficients[0]);
  double bits = 4.0 + MagnitudeBits(dc - prev_dc);  // DC size code + amplitude
  for (int i = 1; i < 64; ++i) {
    if (coefficients[i] != 0) {
      bits += 4.0 + MagnitudeBits(coefficients[i]);  // run/size + amplitude
    }
  }
  bits += 4.0;  // end-of-block marker
  *dc_out = dc;
  return bits;
}

/// Extracts an 8×8 block (replicate padding) centred at (bx*8, by*8),
/// level-shifted by -128.
void ExtractBlock(const Plane& plane, int bx, int by, float out[64]) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      out[y * 8 + x] = plane.AtClamped(bx * 8 + x, by * 8 + y) - 128.0f;
    }
  }
}

/// Sums entropy bits across all blocks of one plane.
double PlaneBits(const Plane& plane, const int quant[64], int quality) {
  const int blocks_x = (plane.width() + 7) / 8;
  const int blocks_y = (plane.height() + 7) / 8;
  float qtab[64];
  int qint[64];
  BuildQuantTables(quant, quality, qtab, qint);
  double bits = 0.0;
  int prev_dc = 0;
  float block[64];
  float dct[64];
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      ExtractBlock(plane, bx, by, block);
      ForwardDct8x8(block, dct);
      int dc = 0;
      bits += BlockBits(dct, qtab, &dc, prev_dc);
      prev_dc = dc;
    }
  }
  return bits;
}

/// DCT basis table shared by the forward and inverse transforms. A
/// function-local static so initialization is thread-safe (size estimation
/// runs on the pool; a hand-rolled lazy-init flag here is a data race).
const float (*DctCosTable())[8] {
  static const struct Table {
    float v[8][8];
    Table() {
      for (int k = 0; k < 8; ++k) {
        for (int n = 0; n < 8; ++n) {
          v[k][n] =
              static_cast<float>(std::cos((2 * n + 1) * k * M_PI / 16.0));
        }
      }
    }
  } table;
  return table.v;
}

}  // namespace

void ForwardDct8x8(const float input[64], float output[64]) {
  // Separable DCT-II with orthonormal scaling (matches JPEG conventions up
  // to the standard x4 factor folded into the basis constants). The kernel
  // layer's scalar and AVX2 builds both reproduce the historical per-lane
  // mul+add order, so the output is unchanged bit for bit.
  kernels::ForwardDct8x8(input, output);
}

void InverseDct8x8(const float input[64], float output[64]) {
  const float(*cos_table)[8] = DctCosTable();
  float temp[64];
  // Columns (DCT-III with orthonormal scaling).
  for (int x = 0; x < 8; ++x) {
    for (int n = 0; n < 8; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) {
        const float alpha = (k == 0) ? 0.353553391f : 0.5f;
        acc += alpha * input[k * 8 + x] * cos_table[k][n];
      }
      temp[n * 8 + x] = acc;
    }
  }
  // Rows.
  for (int y = 0; y < 8; ++y) {
    for (int n = 0; n < 8; ++n) {
      float acc = 0.0f;
      for (int k = 0; k < 8; ++k) {
        const float alpha = (k == 0) ? 0.353553391f : 0.5f;
        acc += alpha * temp[y * 8 + k] * cos_table[k][n];
      }
      output[y * 8 + n] = acc;
    }
  }
}

namespace {

/// Quantize/dequantize every 8×8 block of a plane in place.
void RoundTripPlane(Plane& plane, const int quant[64], int quality) {
  const int blocks_x = (plane.width() + 7) / 8;
  const int blocks_y = (plane.height() + 7) / 8;
  float qtab[64];
  int qint[64];
  BuildQuantTables(quant, quality, qtab, qint);
  float block[64], dct[64], back[64];
  std::int32_t coefficients[64];
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      ExtractBlock(plane, bx, by, block);
      ForwardDct8x8(block, dct);
      kernels::QuantizeBlock8x8(dct, qtab, coefficients);
      for (int i = 0; i < 64; ++i) {
        dct[i] = static_cast<float>(coefficients[i] * qint[i]);
      }
      InverseDct8x8(dct, back);
      for (int y = 0; y < 8; ++y) {
        const int py = by * 8 + y;
        if (py >= plane.height()) break;
        for (int x = 0; x < 8; ++x) {
          const int px = bx * 8 + x;
          if (px >= plane.width()) break;
          plane.At(px, py) = back[y * 8 + x] + 128.0f;
        }
      }
    }
  }
}

}  // namespace

Image SimulateJpegRoundTrip(const Image& image, int quality) {
  PHOCUS_CHECK(!image.empty(), "cannot round-trip an empty image");
  PHOCUS_CHECK(quality >= 1 && quality <= 100, "quality must be in [1, 100]");
  const int w = image.width();
  const int h = image.height();
  Plane y_plane(w, h), cb_full(w, h), cr_full(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const Rgb p = image.At(x, y);
      y_plane.At(x, y) = 0.299f * p.r + 0.587f * p.g + 0.114f * p.b;
      cb_full.At(x, y) = 128.0f - 0.168736f * p.r - 0.331264f * p.g + 0.5f * p.b;
      cr_full.At(x, y) = 128.0f + 0.5f * p.r - 0.418688f * p.g - 0.081312f * p.b;
    }
  }
  const int cw = std::max(1, w / 2);
  const int ch = std::max(1, h / 2);
  Plane cb = ResizeBilinear(cb_full, cw, ch);
  Plane cr = ResizeBilinear(cr_full, cw, ch);

  RoundTripPlane(y_plane, kLumaQuant, quality);
  RoundTripPlane(cb, kChromaQuant, quality);
  RoundTripPlane(cr, kChromaQuant, quality);

  const Plane cb_up = ResizeBilinear(cb, w, h);
  const Plane cr_up = ResizeBilinear(cr, w, h);
  Image out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const float yy = y_plane.At(x, y);
      const float cbv = cb_up.At(x, y) - 128.0f;
      const float crv = cr_up.At(x, y) - 128.0f;
      auto to8 = [](float f) {
        return static_cast<std::uint8_t>(std::clamp(f + 0.5f, 0.0f, 255.0f));
      };
      out.At(x, y) = Rgb{to8(yy + 1.402f * crv),
                         to8(yy - 0.344136f * cbv - 0.714136f * crv),
                         to8(yy + 1.772f * cbv)};
    }
  }
  return out;
}

std::uint64_t EstimateJpegBytes(const Image& image,
                                const JpegSizeOptions& options) {
  PHOCUS_CHECK(!image.empty(), "cannot size an empty image");
  PHOCUS_CHECK(options.quality >= 1 && options.quality <= 100,
               "JPEG quality must be in [1, 100]");
  PHOCUS_CHECK(options.resolution_scale > 0.0,
               "resolution_scale must be positive");

  // Y/Cb/Cr planes; chroma subsampled 2:1 in both axes (4:2:0).
  const int w = image.width();
  const int h = image.height();
  Plane y_plane(w, h), cb_full(w, h), cr_full(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const Rgb p = image.At(x, y);
      const float yy = 0.299f * p.r + 0.587f * p.g + 0.114f * p.b;
      y_plane.At(x, y) = yy;
      cb_full.At(x, y) = 128.0f - 0.168736f * p.r - 0.331264f * p.g + 0.5f * p.b;
      cr_full.At(x, y) = 128.0f + 0.5f * p.r - 0.418688f * p.g - 0.081312f * p.b;
    }
  }
  const int cw = std::max(1, w / 2);
  const int ch = std::max(1, h / 2);
  const Plane cb = ResizeBilinear(cb_full, cw, ch);
  const Plane cr = ResizeBilinear(cr_full, cw, ch);

  double bits = PlaneBits(y_plane, kLumaQuant, options.quality) +
                PlaneBits(cb, kChromaQuant, options.quality) +
                PlaneBits(cr, kChromaQuant, options.quality);

  constexpr double kHeaderBytes = 640.0;  // markers + tables + EXIF stub
  const double scale = options.resolution_scale * options.resolution_scale;
  const double bytes = kHeaderBytes + scale * bits / 8.0;
  return static_cast<std::uint64_t>(std::llround(bytes));
}

}  // namespace phocus
