#include "imaging/ppm_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "util/json.h"  // ReadFile/WriteFile
#include "util/logging.h"
#include "util/strings.h"

namespace phocus {

std::string EncodePpm(const Image& image) {
  PHOCUS_CHECK(!image.empty(), "cannot encode an empty image");
  std::string out = StrFormat("P6\n%d %d\n255\n", image.width(), image.height());
  out.reserve(out.size() + image.pixels().size() * 3);
  for (const Rgb& p : image.pixels()) {
    out.push_back(static_cast<char>(p.r));
    out.push_back(static_cast<char>(p.g));
    out.push_back(static_cast<char>(p.b));
  }
  return out;
}

namespace {

/// Reads the next whitespace/comment-delimited token of a PNM header.
std::string NextToken(const std::string& bytes, std::size_t& pos) {
  while (pos < bytes.size()) {
    if (bytes[pos] == '#') {
      while (pos < bytes.size() && bytes[pos] != '\n') ++pos;
    } else if (std::isspace(static_cast<unsigned char>(bytes[pos]))) {
      ++pos;
    } else {
      break;
    }
  }
  std::size_t start = pos;
  while (pos < bytes.size() &&
         !std::isspace(static_cast<unsigned char>(bytes[pos]))) {
    ++pos;
  }
  PHOCUS_CHECK(pos > start, "truncated PNM header");
  return bytes.substr(start, pos - start);
}

}  // namespace

Image DecodePpm(const std::string& bytes) {
  std::size_t pos = 0;
  PHOCUS_CHECK(NextToken(bytes, pos) == "P6", "not a binary PPM (P6) file");
  const int width = std::stoi(NextToken(bytes, pos));
  const int height = std::stoi(NextToken(bytes, pos));
  const int maxval = std::stoi(NextToken(bytes, pos));
  PHOCUS_CHECK(width > 0 && height > 0, "bad PPM dimensions");
  PHOCUS_CHECK(maxval == 255, "only 8-bit PPM supported");
  PHOCUS_CHECK(pos < bytes.size(), "truncated PPM header");
  ++pos;  // single whitespace after maxval
  const std::size_t need = static_cast<std::size_t>(width) * height * 3;
  PHOCUS_CHECK(bytes.size() - pos >= need, "truncated PPM pixel data");
  Image image(width, height);
  for (std::size_t i = 0; i < static_cast<std::size_t>(width) * height; ++i) {
    image.pixels()[i].r = static_cast<std::uint8_t>(bytes[pos + 3 * i]);
    image.pixels()[i].g = static_cast<std::uint8_t>(bytes[pos + 3 * i + 1]);
    image.pixels()[i].b = static_cast<std::uint8_t>(bytes[pos + 3 * i + 2]);
  }
  return image;
}

void WritePpm(const std::string& path, const Image& image) {
  WriteFile(path, EncodePpm(image));
}

Image ReadPpm(const std::string& path) { return DecodePpm(ReadFile(path)); }

void WritePgm(const std::string& path, const Plane& plane) {
  PHOCUS_CHECK(!plane.empty(), "cannot encode an empty plane");
  std::string out = StrFormat("P5\n%d %d\n255\n", plane.width(), plane.height());
  out.reserve(out.size() + plane.values().size());
  for (float v : plane.values()) {
    out.push_back(static_cast<char>(
        static_cast<std::uint8_t>(std::clamp(v, 0.0f, 255.0f))));
  }
  WriteFile(path, out);
}

}  // namespace phocus
