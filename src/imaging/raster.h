#ifndef PHOCUS_IMAGING_RASTER_H_
#define PHOCUS_IMAGING_RASTER_H_

#include <cstdint>
#include <vector>

/// \file raster.h
/// In-memory image types: 8-bit interleaved RGB rasters and single-channel
/// float planes (used by the filtering / feature pipeline).

namespace phocus {

/// An 8-bit-per-channel interleaved RGB image.
struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
  bool operator==(const Rgb&) const = default;
};

class Image {
 public:
  Image() = default;
  /// Creates a width×height image filled with `fill`.
  Image(int width, int height, Rgb fill = Rgb{0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }

  /// Unchecked pixel access (debug builds assert bounds via vector::at-free
  /// arithmetic; callers must stay in range).
  Rgb& At(int x, int y) { return data_[static_cast<std::size_t>(y) * width_ + x]; }
  const Rgb& At(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Clamped access: coordinates are clamped to the image border (replicate
  /// padding), convenient for convolutions.
  const Rgb& AtClamped(int x, int y) const;

  const std::vector<Rgb>& pixels() const { return data_; }
  std::vector<Rgb>& pixels() { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> data_;
};

/// A single-channel float image (typically luminance in [0, 255]).
class Plane {
 public:
  Plane() = default;
  Plane(int width, int height, float fill = 0.0f);

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return data_.empty(); }

  float& At(int x, int y) { return data_[static_cast<std::size_t>(y) * width_ + x]; }
  float At(int x, int y) const {
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  float AtClamped(int x, int y) const;

  const std::vector<float>& values() const { return data_; }
  std::vector<float>& values() { return data_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

/// ITU-R BT.601 luma in [0, 255].
float Luma(Rgb pixel);

/// Converts RGB to a luminance plane.
Plane ToLuma(const Image& image);

}  // namespace phocus

#endif  // PHOCUS_IMAGING_RASTER_H_
