#ifndef PHOCUS_IMAGING_METRICS_H_
#define PHOCUS_IMAGING_METRICS_H_

#include "imaging/raster.h"

/// \file metrics.h
/// Full-reference image quality metrics, used to quantify what a
/// compression level does to a photo (phocus/compression_calibration.h)
/// and available to downstream users comparing renditions.

namespace phocus {

/// Peak signal-to-noise ratio in dB over all RGB channels. Identical
/// images return +infinity. Dimensions must match.
double Psnr(const Image& a, const Image& b);

/// Mean SSIM (structural similarity) over the luma plane, computed on
/// non-overlapping 8×8 windows with the standard constants
/// (k1 = 0.01, k2 = 0.03, L = 255). Returns a value in [-1, 1]
/// (1 = identical). Dimensions must match and be at least 8×8.
double Ssim(const Image& a, const Image& b);

}  // namespace phocus

#endif  // PHOCUS_IMAGING_METRICS_H_
