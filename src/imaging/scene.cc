#include "imaging/scene.h"

#include <algorithm>
#include <cmath>

#include "imaging/ops.h"
#include "util/logging.h"

namespace phocus {

Rgb HsvToRgb(float h, float s, float v) {
  h = std::fmod(h, 360.0f);
  if (h < 0.0f) h += 360.0f;
  s = std::clamp(s, 0.0f, 1.0f);
  v = std::clamp(v, 0.0f, 1.0f);
  const float c = v * s;
  const float hp = h / 60.0f;
  const float x = c * (1.0f - std::abs(std::fmod(hp, 2.0f) - 1.0f));
  float r = 0, g = 0, b = 0;
  if (hp < 1) { r = c; g = x; }
  else if (hp < 2) { r = x; g = c; }
  else if (hp < 3) { g = c; b = x; }
  else if (hp < 4) { g = x; b = c; }
  else if (hp < 5) { r = x; b = c; }
  else { r = c; b = x; }
  const float m = v - c;
  auto to8 = [&](float f) {
    return static_cast<std::uint8_t>(std::clamp((f + m) * 255.0f + 0.5f, 0.0f, 255.0f));
  };
  return Rgb{to8(r), to8(g), to8(b)};
}

SceneStyle StyleForCategory(const std::string& category) {
  // Hash the name into a deterministic style seed.
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a
  for (char c : category) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  Rng rng(hash);
  SceneStyle style;
  style.category = category;
  style.base_hue = static_cast<float>(rng.Uniform(0.0, 360.0));
  style.hue_spread = static_cast<float>(rng.Uniform(15.0, 55.0));
  style.texture_amount = static_cast<float>(rng.Uniform(0.05, 0.5));
  style.min_shapes = static_cast<int>(rng.UniformInt(2, 3));
  style.max_shapes = style.min_shapes + static_cast<int>(rng.UniformInt(1, 4));
  // Each category favours a subset of 2-3 shape kinds.
  std::vector<SceneShape::Kind> all = {
      SceneShape::Kind::kCircle, SceneShape::Kind::kRectangle,
      SceneShape::Kind::kTriangle, SceneShape::Kind::kRing,
      SceneShape::Kind::kStripe};
  rng.Shuffle(all);
  const std::size_t vocabulary_size = 2 + rng.NextBelow(2);
  style.shape_vocabulary.assign(all.begin(), all.begin() + vocabulary_size);
  return style;
}

SceneParams SampleScene(const SceneStyle& style, Rng& rng) {
  PHOCUS_CHECK(!style.shape_vocabulary.empty(), "style has no shape vocabulary");
  SceneParams params;
  const float hue0 =
      style.base_hue + static_cast<float>(rng.Uniform(-style.hue_spread, style.hue_spread));
  params.background_top =
      HsvToRgb(hue0, static_cast<float>(rng.Uniform(0.15, 0.45)),
               static_cast<float>(rng.Uniform(0.55, 0.95)));
  params.background_bottom =
      HsvToRgb(hue0 + static_cast<float>(rng.Uniform(-20.0, 20.0)),
               static_cast<float>(rng.Uniform(0.2, 0.5)),
               static_cast<float>(rng.Uniform(0.3, 0.7)));
  const int num_shapes =
      static_cast<int>(rng.UniformInt(style.min_shapes, style.max_shapes));
  for (int i = 0; i < num_shapes; ++i) {
    SceneShape shape;
    shape.kind = style.shape_vocabulary[rng.NextBelow(style.shape_vocabulary.size())];
    shape.center_x = static_cast<float>(rng.Uniform(0.15, 0.85));
    shape.center_y = static_cast<float>(rng.Uniform(0.15, 0.85));
    shape.size = static_cast<float>(rng.Uniform(0.08, 0.32));
    shape.angle = static_cast<float>(rng.Uniform(0.0, M_PI));
    shape.color = HsvToRgb(
        style.base_hue + static_cast<float>(rng.Uniform(-style.hue_spread, style.hue_spread)),
        static_cast<float>(rng.Uniform(0.5, 1.0)),
        static_cast<float>(rng.Uniform(0.4, 1.0)));
    params.shapes.push_back(shape);
  }
  params.noise_sigma =
      static_cast<float>(rng.Uniform(1.0, 2.0 + 8.0 * style.texture_amount));
  params.blur_sigma = rng.Bernoulli(0.2)
                          ? static_cast<float>(rng.Uniform(0.6, 1.8))
                          : 0.0f;
  params.brightness = static_cast<float>(rng.Uniform(0.75, 1.2));
  params.noise_seed = rng.Next();
  return params;
}

SceneParams JitterScene(const SceneParams& params, Rng& rng, double amount) {
  PHOCUS_CHECK(amount >= 0.0 && amount <= 1.0, "jitter amount must be in [0,1]");
  SceneParams out = params;
  const float a = static_cast<float>(amount);
  auto jitter_color = [&](Rgb c) {
    auto bump = [&](std::uint8_t v) {
      const float delta = static_cast<float>(rng.Normal(0.0, 18.0 * a));
      return static_cast<std::uint8_t>(std::clamp(v + delta, 0.0f, 255.0f));
    };
    return Rgb{bump(c.r), bump(c.g), bump(c.b)};
  };
  out.background_top = jitter_color(out.background_top);
  out.background_bottom = jitter_color(out.background_bottom);
  for (SceneShape& shape : out.shapes) {
    shape.center_x = std::clamp(
        shape.center_x + static_cast<float>(rng.Normal(0.0, 0.05 * a)), 0.0f, 1.0f);
    shape.center_y = std::clamp(
        shape.center_y + static_cast<float>(rng.Normal(0.0, 0.05 * a)), 0.0f, 1.0f);
    shape.size = std::clamp(
        shape.size * (1.0f + static_cast<float>(rng.Normal(0.0, 0.1 * a))),
        0.02f, 0.5f);
    shape.angle += static_cast<float>(rng.Normal(0.0, 0.2 * a));
    shape.color = jitter_color(shape.color);
  }
  out.brightness = std::clamp(
      out.brightness * (1.0f + static_cast<float>(rng.Normal(0.0, 0.08 * a))),
      0.4f, 1.6f);
  out.noise_seed = rng.Next();  // fresh sensor noise, like a re-shot frame
  return out;
}

namespace {

/// Signed distance-ish inclusion test for a shape at normalized point (u,v).
bool InsideShape(const SceneShape& shape, float u, float v) {
  // Rotate into the shape frame.
  const float du = u - shape.center_x;
  const float dv = v - shape.center_y;
  const float ca = std::cos(-shape.angle);
  const float sa = std::sin(-shape.angle);
  const float x = du * ca - dv * sa;
  const float y = du * sa + dv * ca;
  const float s = shape.size;
  switch (shape.kind) {
    case SceneShape::Kind::kCircle:
      return x * x + y * y <= s * s;
    case SceneShape::Kind::kRectangle:
      return std::abs(x) <= s && std::abs(y) <= 0.62f * s;
    case SceneShape::Kind::kTriangle: {
      // Upward triangle with apex at (0, -s) and base at y = s/2.
      if (y < -s || y > 0.5f * s) return false;
      const float half_width = 0.75f * (y + s) / 1.5f;
      return std::abs(x) <= half_width;
    }
    case SceneShape::Kind::kRing: {
      const float r2 = x * x + y * y;
      const float outer = s;
      const float inner = 0.6f * s;
      return r2 <= outer * outer && r2 >= inner * inner;
    }
    case SceneShape::Kind::kStripe:
      return std::abs(y) <= 0.18f * s;
  }
  return false;
}

}  // namespace

Image RenderScene(const SceneParams& params, int width, int height) {
  PHOCUS_CHECK(width > 0 && height > 0, "bad render dimensions");
  Image image(width, height);
  // Background vertical gradient.
  for (int y = 0; y < height; ++y) {
    const float t = height > 1 ? static_cast<float>(y) / (height - 1) : 0.0f;
    auto blend = [&](std::uint8_t a, std::uint8_t b) {
      return static_cast<std::uint8_t>(a + t * (b - a));
    };
    const Rgb row{blend(params.background_top.r, params.background_bottom.r),
                  blend(params.background_top.g, params.background_bottom.g),
                  blend(params.background_top.b, params.background_bottom.b)};
    for (int x = 0; x < width; ++x) image.At(x, y) = row;
  }
  // Shapes, painter's order.
  for (const SceneShape& shape : params.shapes) {
    for (int y = 0; y < height; ++y) {
      const float v = (y + 0.5f) / height;
      for (int x = 0; x < width; ++x) {
        const float u = (x + 0.5f) / width;
        if (InsideShape(shape, u, v)) image.At(x, y) = shape.color;
      }
    }
  }
  // Exposure + sensor noise (deterministic from noise_seed).
  Rng noise(params.noise_seed);
  for (Rgb& p : image.pixels()) {
    auto apply = [&](std::uint8_t channel) {
      float value = channel * params.brightness;
      if (params.noise_sigma > 0.0f) {
        value += static_cast<float>(noise.Normal(0.0, params.noise_sigma));
      }
      return static_cast<std::uint8_t>(std::clamp(value, 0.0f, 255.0f));
    };
    p = Rgb{apply(p.r), apply(p.g), apply(p.b)};
  }
  // Optional defocus blur applied per channel.
  if (params.blur_sigma > 0.0f) {
    Plane r(width, height), g(width, height), b(width, height);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        const Rgb p = image.At(x, y);
        r.At(x, y) = p.r;
        g.At(x, y) = p.g;
        b.At(x, y) = p.b;
      }
    }
    r = GaussianBlur(r, params.blur_sigma);
    g = GaussianBlur(g, params.blur_sigma);
    b = GaussianBlur(b, params.blur_sigma);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        auto to8 = [](float f) {
          return static_cast<std::uint8_t>(std::clamp(f + 0.5f, 0.0f, 255.0f));
        };
        image.At(x, y) = Rgb{to8(r.At(x, y)), to8(g.At(x, y)), to8(b.At(x, y))};
      }
    }
  }
  return image;
}

}  // namespace phocus
