#include "imaging/exif.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace phocus {

namespace {
constexpr std::array<const char*, 6> kCameraModels = {
    "Acme A7", "Acme A9", "PhonePro 12", "PhonePro 14", "Lumen X100",
    "Lumen Z50"};
}  // namespace

double ExifMetadata::Distance(const ExifMetadata& a, const ExifMetadata& b) {
  // Time: saturating at 30 days apart.
  const double dt = std::abs(static_cast<double>(a.timestamp_unix - b.timestamp_unix));
  const double time_term = std::min(1.0, dt / (30.0 * 86400.0));
  // Location: saturating at ~5 degrees (crude but monotone).
  const double dlat = a.latitude - b.latitude;
  const double dlon = a.longitude - b.longitude;
  const double degrees = std::sqrt(dlat * dlat + dlon * dlon);
  const double location_term = std::min(1.0, degrees / 5.0);
  const double device_term = a.camera_model == b.camera_model ? 0.0 : 1.0;
  return 0.5 * time_term + 0.35 * location_term + 0.15 * device_term;
}

ExifMetadata SampleExif(Rng& rng, std::int64_t event_center_unix,
                        double event_latitude, double event_longitude) {
  ExifMetadata exif;
  exif.timestamp_unix =
      event_center_unix + static_cast<std::int64_t>(rng.Normal(0.0, 3600.0 * 6));
  exif.camera_model = kCameraModels[rng.NextBelow(kCameraModels.size())];
  static constexpr int kIsoStops[] = {100, 200, 400, 800, 1600, 3200};
  exif.iso = kIsoStops[rng.NextBelow(6)];
  exif.exposure_ms = std::exp(rng.Uniform(std::log(0.5), std::log(100.0)));
  exif.focal_mm = rng.Uniform(18.0, 200.0);
  exif.latitude = std::clamp(event_latitude + rng.Normal(0.0, 0.05), -90.0, 90.0);
  exif.longitude = event_longitude + rng.Normal(0.0, 0.05);
  return exif;
}

}  // namespace phocus
