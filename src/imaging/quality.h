#ifndef PHOCUS_IMAGING_QUALITY_H_
#define PHOCUS_IMAGING_QUALITY_H_

#include "imaging/raster.h"

/// \file quality.h
/// No-reference image quality metrics. The paper's relevance function R is
/// "computed based both on the quality of the image ... and the relevance
/// score of the product" (§5.1); this module supplies the quality half.

namespace phocus {

/// Per-aspect quality scores, each normalized into [0, 1].
struct QualityReport {
  double sharpness = 0.0;   ///< variance-of-Laplacian, saturating map
  double contrast = 0.0;    ///< luma standard deviation, saturating map
  double exposure = 0.0;    ///< 1 − |mean luma − 128| / 128
  double noise = 0.0;       ///< 1 − saturating high-frequency residual
  double resolution = 0.0;  ///< pixel count relative to a 256×256 reference
  double overall = 0.0;     ///< weighted combination of the above
};

/// Computes all quality aspects for an image.
QualityReport AssessQuality(const Image& image);

/// Variance of the Laplacian (the classic blur detector), unnormalized.
double LaplacianVariance(const Image& image);

/// Estimate of additive noise: the mean absolute residual between the luma
/// plane and a lightly blurred copy, unnormalized.
double NoiseResidual(const Image& image);

}  // namespace phocus

#endif  // PHOCUS_IMAGING_QUALITY_H_
