#ifndef PHOCUS_TELEMETRY_METRICS_H_
#define PHOCUS_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file metrics.h
/// The phocus_telemetry metrics registry: named, thread-safe counters,
/// gauges, and log-scale histograms, cheap enough to leave on in release
/// builds.
///
/// Hot-path recorders are a single relaxed atomic op; metric *lookup*
/// (GetCounter etc.) takes a mutex, so instrumented loops should resolve
/// their metrics once up front (or accumulate locally and flush once).
///
/// Two switches control recording:
///  - compile time: the PHOCUS_TELEMETRY CMake option defines
///    PHOCUS_TELEMETRY_ENABLED; when 0 every recorder is an inline no-op and
///    the optimizer erases the instrumentation entirely,
///  - run time: SetEnabled(false) gates spans and histograms (counters and
///    gauges stay on — a relaxed add is cheaper than hiding it behind the
///    branch would be worth).
///
/// Instrumented code reports into MetricsRegistry::Current(), which is the
/// process-global default registry unless a ScopedMetricsRegistry injects a
/// per-run one (benches and tests use this for isolated snapshots).
///
/// Naming convention: dot-separated `<module>.<component>.<metric>`, with
/// duration histograms suffixed `_ns` (values in nanoseconds) — e.g.
/// `solver.celf.lazy_hits`, `system.stage.solve_ns`. See
/// docs/OBSERVABILITY.md.

#ifndef PHOCUS_TELEMETRY_ENABLED
#define PHOCUS_TELEMETRY_ENABLED 1
#endif

namespace phocus {
namespace telemetry {

/// True when the recorders were compiled in (PHOCUS_TELEMETRY=ON).
inline constexpr bool kCompiled = PHOCUS_TELEMETRY_ENABLED != 0;

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Runtime gate for spans and histogram recording. Defaults to enabled.
void SetEnabled(bool enabled);
inline bool Enabled() {
  return kCompiled && internal::g_enabled.load(std::memory_order_relaxed);
}

/// Monotonically increasing event count. All operations are thread-safe.
class Counter {
 public:
  void Add(std::uint64_t n) {
    if constexpr (kCompiled) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  void Increment() { Add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, config echoes).
class Gauge {
 public:
  void Set(double value) {
    if constexpr (kCompiled) {
      value_.store(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram over positive values (typically nanoseconds).
///
/// Buckets are geometric with 4 per doubling (upper bound of bucket i is
/// 2^{(i+1)/4}), so quantiles carry at most ~19% relative error — plenty for
/// latency percentiles. Recording is lock-free: one relaxed bucket add plus
/// CAS loops for the running sum and max.
class Histogram {
 public:
  static constexpr int kBucketsPerDoubling = 4;
  static constexpr int kNumBuckets = 64 * kBucketsPerDoubling;

  void Record(double value) {
    if constexpr (kCompiled) {
      if (Enabled()) RecordImpl(value);
    } else {
      (void)value;
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double max() const;
  double mean() const;

  /// Approximate q-quantile (q in [0, 1]): the upper bound of the bucket
  /// containing the ceil(q * count)-th smallest recorded value; 0 when empty.
  double Quantile(double q) const;

  void Reset();

  /// Bucket index for a value (exposed for tests).
  static int BucketIndex(double value);
  /// Upper bound of bucket i.
  static double BucketUpperBound(int index);

 private:
  void RecordImpl(double value);

  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // bit-cast double, CAS-added
  std::atomic<std::uint64_t> max_bits_{0};  // bit-cast double, CAS-maxed
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// One exported metric value (see MetricsRegistry::Snapshot).
struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeValue {
  std::string name;
  double value = 0.0;
};
struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// A point-in-time copy of every registered metric, name-sorted.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Named metric store. Get* registers on first use and returns a reference
/// that stays valid for the registry's lifetime, so hot paths can resolve
/// once and record lock-free thereafter.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (names stay registered).
  void Reset();

  /// The process-global default registry.
  static MetricsRegistry& Default();
  /// The active registry: Default() unless a ScopedMetricsRegistry is live.
  static MetricsRegistry& Current();

 private:
  friend class ScopedMetricsRegistry;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Injects `registry` as MetricsRegistry::Current() for this scope (process-
/// wide, not per-thread: intended to wrap one run in a bench or test, not to
/// interleave with concurrent scopes).
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

}  // namespace telemetry
}  // namespace phocus

#endif  // PHOCUS_TELEMETRY_METRICS_H_
