#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <exception>
#include <mutex>
#include <set>

namespace phocus {
namespace telemetry {

namespace {

using Clock = std::chrono::steady_clock;

/// Recorder epoch, latched on first use so t_ns values from every thread
/// share one timeline (mirrors the trace epoch, which is latched
/// independently — the two timelines are not comparable).
Clock::time_point Epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::uint64_t NowNs() {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Epoch())
          .count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

/// One ring slot. Every field is an atomic so concurrent overwrite while a
/// snapshot reads is a stale read, never a data race; `seq` doubles as the
/// occupancy marker (0 = empty / being written) and the torn-read check.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> time_ns{0};
  std::atomic<const char*> name{""};
  std::atomic<const char*> detail{""};
  std::atomic<std::uint64_t> arg0{0};
  std::atomic<std::uint64_t> arg1{0};
};

struct Ring {
  std::uint32_t ordinal = 0;
  std::atomic<std::uint64_t> next{0};
  Slot slots[FlightRecorder::kRingCapacity];
};

static_assert((FlightRecorder::kRingCapacity &
               (FlightRecorder::kRingCapacity - 1)) == 0,
              "ring capacity must be a power of two");

/// Global order stamp; the next event gets g_seq+1.
std::atomic<std::uint64_t> g_seq{0};

std::mutex& RegistryMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

/// All rings ever created. Never shrinks: a thread that exits leaves its
/// ring (and thread_local pointer targets) valid for post-mortem dumps.
std::vector<Ring*>& Rings() {
  static std::vector<Ring*>* rings = new std::vector<Ring*>();
  return *rings;
}

Ring* ThisThreadRing() {
  thread_local Ring* ring = [] {
    auto* fresh = new Ring();
    std::lock_guard<std::mutex> lock(RegistryMutex());
    fresh->ordinal = static_cast<std::uint32_t>(Rings().size());
    Rings().push_back(fresh);
    return fresh;
  }();
  return ring;
}

/// Crash-dump destination; leaked string so the terminate handler never
/// touches a destroyed static.
std::mutex& DumpPathMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}
std::string& DumpPath() {
  static std::string* path = new std::string();
  return *path;
}

std::terminate_handler g_previous_terminate = nullptr;

[[noreturn]] void TerminateWithDump() {
  FlightRecorder::WriteCrashDump();
  if (g_previous_terminate != nullptr) g_previous_terminate();
  std::abort();
}

void FatalSignalWithDump(int signal_number) {
  // Not async-signal-safe — but the process is dying anyway, and a
  // best-effort dump beats none. Re-raise with the default disposition so
  // the exit status still reports the signal.
  FlightRecorder::WriteCrashDump();
  std::signal(signal_number, SIG_DFL);
  std::raise(signal_number);
}

}  // namespace

void FlightRecorder::Record(const char* name, const char* detail,
                            std::uint64_t arg0, std::uint64_t arg1) {
  if constexpr (!kCompiled) {
    (void)name;
    (void)detail;
    (void)arg0;
    (void)arg1;
    return;
  } else {
    const std::uint64_t time_ns = NowNs();
    const std::uint64_t seq =
        g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    Ring* ring = ThisThreadRing();
    Slot& slot =
        ring->slots[ring->next.fetch_add(1, std::memory_order_relaxed) &
                    (kRingCapacity - 1)];
    // Mark the slot as in-flight, fill it, then publish the new seq; a
    // snapshot racing this sees seq 0 (skip) or the consistent new value.
    slot.seq.store(0, std::memory_order_release);
    slot.time_ns.store(time_ns, std::memory_order_relaxed);
    slot.name.store(name, std::memory_order_relaxed);
    slot.detail.store(detail, std::memory_order_relaxed);
    slot.arg0.store(arg0, std::memory_order_relaxed);
    slot.arg1.store(arg1, std::memory_order_relaxed);
    slot.seq.store(seq, std::memory_order_release);
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() {
  std::vector<FlightEvent> events;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (const Ring* ring : Rings()) {
    for (const Slot& slot : ring->slots) {
      const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0) continue;
      FlightEvent event;
      event.seq = before;
      event.time_ns = slot.time_ns.load(std::memory_order_relaxed);
      event.thread = ring->ordinal;
      event.name = slot.name.load(std::memory_order_relaxed);
      event.detail = slot.detail.load(std::memory_order_relaxed);
      event.arg0 = slot.arg0.load(std::memory_order_relaxed);
      event.arg1 = slot.arg1.load(std::memory_order_relaxed);
      if (slot.seq.load(std::memory_order_acquire) != before) continue;
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

Json FlightRecorder::ToJson() {
  const std::vector<FlightEvent> events = Snapshot();
  Json out = Json::Object();
  out.Set("capacity_per_thread", kRingCapacity);
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    out.Set("threads", Rings().size());
  }
  out.Set("recorded", recorded());
  Json list = Json::Array();
  for (const FlightEvent& event : events) {
    Json entry = Json::Object();
    entry.Set("seq", event.seq);
    entry.Set("t_ns", event.time_ns);
    entry.Set("thread", static_cast<std::uint64_t>(event.thread));
    entry.Set("name", event.name);
    entry.Set("detail", event.detail);
    entry.Set("arg0", event.arg0);
    entry.Set("arg1", event.arg1);
    list.Append(std::move(entry));
  }
  out.Set("events", std::move(list));
  return out;
}

std::uint64_t FlightRecorder::recorded() {
  return g_seq.load(std::memory_order_relaxed);
}

void FlightRecorder::SetCrashDumpPath(std::string path) {
  std::lock_guard<std::mutex> lock(DumpPathMutex());
  DumpPath() = std::move(path);
}

std::string FlightRecorder::crash_dump_path() {
  std::lock_guard<std::mutex> lock(DumpPathMutex());
  return DumpPath();
}

bool FlightRecorder::WriteCrashDump() {
  const std::string path = crash_dump_path();
  if (path.empty()) return false;
  return WriteCrashDump(path);
}

bool FlightRecorder::WriteCrashDump(const std::string& path) {
  try {
    WriteFile(path, ToJson().Dump(1) + "\n");
    return true;
  } catch (...) {
    // A recorder that cannot dump must not turn the crash into another one.
    return false;
  }
}

void FlightRecorder::InstallCrashHandler(std::string path) {
  SetCrashDumpPath(std::move(path));
  g_previous_terminate = std::set_terminate(&TerminateWithDump);
  std::signal(SIGSEGV, &FatalSignalWithDump);
  std::signal(SIGBUS, &FatalSignalWithDump);
  std::signal(SIGFPE, &FatalSignalWithDump);
  std::signal(SIGILL, &FatalSignalWithDump);
  std::signal(SIGABRT, &FatalSignalWithDump);
}

void FlightRecorder::Reset() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (Ring* ring : Rings()) {
    for (Slot& slot : ring->slots) {
      slot.seq.store(0, std::memory_order_relaxed);
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
  g_seq.store(0, std::memory_order_relaxed);
}

const char* InternedName(std::string_view name) {
  static constexpr std::size_t kMaxInterned = 1024;
  static std::mutex* mutex = new std::mutex();
  static std::set<std::string>* interned = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(*mutex);
  auto it = interned->find(std::string(name));
  if (it != interned->end()) return it->c_str();
  if (interned->size() >= kMaxInterned) return "interned.overflow";
  return interned->insert(std::string(name)).first->c_str();
}

}  // namespace telemetry
}  // namespace phocus
