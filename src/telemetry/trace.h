#ifndef PHOCUS_TELEMETRY_TRACE_H_
#define PHOCUS_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

/// \file trace.h
/// RAII tracing spans forming a parent/child tree with wall-clock durations
/// and key/value attributes.
///
/// Spans are collected per thread: a span opened while another span is live
/// on the same thread becomes its child; a span that finishes with no open
/// parent is a *root* and is deposited into the process-global
/// TraceCollector. ThreadPool tasks therefore produce their own roots, and
/// the collector is the merge point across workers.
///
/// When telemetry is compiled out (PHOCUS_TELEMETRY=OFF) or disabled at
/// runtime, constructing a TraceSpan is a no-op. SpanRecord itself is always
/// a real type so exporters and ArchivePlan compile unchanged.

namespace phocus {
namespace telemetry {

/// One finished span. Times are nanoseconds on the steady clock, relative to
/// a process-wide trace epoch (the first span ever started).
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<SpanRecord> children;

  /// This span plus all descendants (tests, capacity accounting).
  std::size_t TotalSpans() const;
};

/// RAII span. Must be closed (destroyed) on the thread that opened it, in
/// LIFO order — the natural shape of scoped usage.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attributes are formatted to strings at set time.
  void SetAttribute(const std::string& key, std::string value);
  void SetAttribute(const std::string& key, const char* value);
  void SetAttribute(const std::string& key, double value);
  void SetAttribute(const std::string& key, std::uint64_t value);

  /// Ends the span now and returns the finished record. The record is still
  /// attached to its parent (or deposited into the global collector when the
  /// span is a root), so callers get a copy to expose — e.g. on ArchivePlan —
  /// without removing it from the trace. No-op spans return an empty record.
  SpanRecord Close();

  /// False when telemetry is compiled out or disabled at runtime.
  bool active() const { return record_ != nullptr; }

 private:
  void Finish(SpanRecord* out);

  std::unique_ptr<SpanRecord> record_;
  std::chrono::steady_clock::time_point start_;
};

/// Process-global sink for finished root spans (bounded; excess roots are
/// counted, not stored).
class TraceCollector {
 public:
  static constexpr std::size_t kMaxRoots = 512;

  void Deposit(SpanRecord root);

  /// Copies the stored roots (does not clear).
  std::vector<SpanRecord> Snapshot() const;
  /// Moves the stored roots out and clears.
  std::vector<SpanRecord> Drain();
  void Clear();

  /// Roots dropped because the collector was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  static TraceCollector& Global();

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> roots_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Redirects root spans finished on *this thread* into `collector` for the
/// scope's lifetime (nested scopes restore the previous sink). phocusd uses
/// one per request on the worker thread, so a request's span tree lands in a
/// request-local collector instead of the bounded process-global one.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceCollector* collector);
  ~ScopedTraceSink();
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceCollector* previous_;
};

/// Nanoseconds on the steady clock since the process trace epoch (latched on
/// first use). For building synthetic SpanRecords — e.g. phocusd's
/// admission-wait span — on the same timeline as real spans.
std::uint64_t TraceNowNs();

}  // namespace telemetry
}  // namespace phocus

#endif  // PHOCUS_TELEMETRY_TRACE_H_
