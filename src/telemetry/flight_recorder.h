#ifndef PHOCUS_TELEMETRY_FLIGHT_RECORDER_H_
#define PHOCUS_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "util/json.h"

/// \file flight_recorder.h
/// Always-on flight recorder: a fixed-size, per-thread, lock-free ring of
/// recent structured events (request start/end, failpoint triggers, cache
/// insert/evict, drain transitions). The rings overwrite oldest-first, so at
/// any instant the recorder holds the last ~kRingCapacity events per thread
/// — cheap enough to leave on in production, and exactly what an operator
/// wants to see after phocusd dies.
///
/// Reading a dump:
///  - over the wire, via the `dump_flight` verb (docs/SERVICE.md),
///  - post mortem, via the crash handler installed by InstallCrashHandler()
///    (std::terminate + fatal signals), which writes the merged ring as JSON
///    before the process exits.
///
/// Concurrency: Record() claims a global sequence number with one relaxed
/// fetch_add and publishes into its thread's ring with release stores; every
/// slot field is an atomic, and readers re-check the slot's sequence after
/// reading (seqlock style) so torn slots are skipped, never misread. Rings
/// are never freed — a thread that exits leaves its last events visible for
/// the post-mortem dump.
///
/// Event names and details must be string literals (or otherwise have static
/// storage duration): slots store raw `const char*`. Dynamic names go
/// through InternedName(), which copies into a leaked intern table.
///
/// When telemetry is compiled out (PHOCUS_TELEMETRY=OFF) Record() is a
/// no-op and dumps degrade to empty event lists; the wire verbs and crash
/// handler still answer. Format: docs/OBSERVABILITY.md.

namespace phocus {
namespace telemetry {

/// One recorded event, as read back out of the rings.
struct FlightEvent {
  std::uint64_t seq = 0;      ///< global order stamp (1-based, increasing)
  std::uint64_t time_ns = 0;  ///< steady-clock ns since the recorder epoch
  std::uint32_t thread = 0;   ///< recording thread's ring ordinal
  const char* name = "";      ///< event kind, e.g. "request.start"
  const char* detail = "";    ///< free-form qualifier, e.g. the endpoint
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// Static-only facade over the per-thread rings.
class FlightRecorder {
 public:
  /// Events retained per recording thread (power of two).
  static constexpr std::size_t kRingCapacity = 256;

  FlightRecorder() = delete;

  /// Appends one event to the calling thread's ring. `name` and `detail`
  /// must point at storage that outlives the process (string literals or
  /// InternedName() results). Lock-free after the thread's first call.
  static void Record(const char* name, const char* detail = "",
                     std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  /// Merged copy of every thread's ring, ordered by seq (oldest first).
  /// Slots being concurrently overwritten are skipped.
  static std::vector<FlightEvent> Snapshot();

  /// The merged snapshot as {"capacity_per_thread", "threads", "recorded",
  /// "events": [{"seq","t_ns","thread","name","detail","arg0","arg1"}]}.
  static Json ToJson();

  /// Total events ever recorded (dropped ones included).
  static std::uint64_t recorded();

  /// Sets / reads the path automatic crash dumps are written to. Empty
  /// (the default) disables automatic dumps.
  static void SetCrashDumpPath(std::string path);
  static std::string crash_dump_path();

  /// Best-effort dump to the configured path (or an explicit one); never
  /// throws — a recorder that cannot dump must not turn a crash into a
  /// different crash. Returns false when disabled or the write failed.
  static bool WriteCrashDump();
  static bool WriteCrashDump(const std::string& path);

  /// Sets the dump path and hooks std::terminate plus the fatal signals
  /// (SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT) to write it before dying.
  /// The previous terminate handler is chained; signals re-raise with the
  /// default disposition after dumping.
  static void InstallCrashHandler(std::string path);

  /// Zeroes every ring and the sequence counter (rings stay registered —
  /// thread-local pointers into them must survive). Tests only.
  static void Reset();
};

/// Copies `name` into a process-lifetime intern table and returns the stable
/// pointer, for Record() call sites whose strings are dynamic (failpoint
/// names, endpoints). Bounded: past 1024 distinct strings, returns a
/// sentinel instead of growing without bound.
const char* InternedName(std::string_view name);

}  // namespace telemetry
}  // namespace phocus

#endif  // PHOCUS_TELEMETRY_FLIGHT_RECORDER_H_
