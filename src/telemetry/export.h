#ifndef PHOCUS_TELEMETRY_EXPORT_H_
#define PHOCUS_TELEMETRY_EXPORT_H_

#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/json.h"
#include "util/table.h"

/// \file export.h
/// Telemetry exporters: JSON and CSV snapshot dumps plus a human-readable
/// flame-style span summary. Formats are documented in
/// docs/OBSERVABILITY.md.

namespace phocus {
namespace telemetry {

/// Sorts a span forest's roots by (start_ns, name, duration_ns) so exported
/// snapshots do not depend on which worker thread deposited first; children
/// keep their (deterministic, single-threaded) creation order.
/// TelemetryToJson applies this, making exports diffable across runs.
void SortSpans(std::vector<SpanRecord>& spans);

/// Metrics snapshot in the Prometheus text exposition format: names
/// prefixed `phocus_` with dots mapped to underscores, counters and gauges
/// as single samples, histograms as summaries (quantile-labelled samples
/// plus `_sum` / `_count`). Deterministic: snapshot order is name-sorted.
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

/// Metrics snapshot as a JSON object:
///   {"counters": {name: value},
///    "gauges": {name: value},
///    "histograms": {name: {count, sum, mean, p50, p90, p99, max}}}
Json MetricsToJson(const MetricsSnapshot& snapshot);

/// Span forest as a JSON array of
///   {"name", "start_ns", "duration_ns", "attributes": {k: v},
///    "children": [...]}.
Json SpansToJson(const std::vector<SpanRecord>& spans);

/// Full snapshot: {"telemetry": {...}, "counters", "gauges", "histograms",
/// "spans", "dropped_spans"}.
Json TelemetryToJson(const MetricsSnapshot& snapshot,
                     const std::vector<SpanRecord>& spans,
                     std::uint64_t dropped_spans = 0);

/// Inverse of MetricsToJson / SpansToJson (export round-trips; used by tests
/// and offline analysis tooling).
MetricsSnapshot MetricsFromJson(const Json& json);
std::vector<SpanRecord> SpansFromJson(const Json& json);

/// Metrics as one flat table (metric, type, count, value/mean, p50, p90,
/// p99, max) — render with Render() for humans or RenderCsv() for plots.
TextTable MetricsToTable(const MetricsSnapshot& snapshot);

/// Histogram-only latency table (metric, count, mean, p50, p90, p99, max)
/// with durations humanized; optionally restricted to names starting with
/// `prefix`. The REPL's \stats uses this for per-stage percentiles.
TextTable LatencyTable(const MetricsSnapshot& snapshot,
                       const std::string& prefix = "");

/// Flame-style indented span summary: per span its total time, self time
/// (total minus children), and share of its root.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

/// "1.5us" / "23.4ms" / "2.1s" from nanoseconds.
std::string HumanDuration(double nanos);

/// Snapshots MetricsRegistry::Current() plus the global TraceCollector and
/// writes them to `path` (JSON / CSV). Throws CheckFailure on I/O failure.
void WriteTelemetryJson(const std::string& path);
void WriteTelemetryCsv(const std::string& path);

}  // namespace telemetry
}  // namespace phocus

#endif  // PHOCUS_TELEMETRY_EXPORT_H_
