#include "telemetry/metrics.h"

#include <bit>
#include <cmath>

#include "telemetry/flight_recorder.h"
#include "util/failpoint.h"

namespace phocus {
namespace telemetry {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

namespace {
std::atomic<MetricsRegistry*> g_current{nullptr};

// phocus_util cannot depend on phocus_telemetry, so the failpoint registry
// mirrors its hit/trigger counters through this sink, installed before main.
// Resolving Current() per call keeps ScopedMetricsRegistry isolation intact;
// failpoints only fire in failure-mode tests, so the lookup cost is moot.
const bool g_failpoint_sink_installed = [] {
  failpoint::internal::SetTelemetrySink(
      +[](std::string_view name, bool triggered) {
        auto& registry = MetricsRegistry::Current();
        const std::string prefix = "failpoint." + std::string(name);
        registry.GetCounter(prefix + ".hits").Increment();
        if (triggered) {
          registry.GetCounter(prefix + ".triggers").Increment();
          // Triggered faults are exactly the events a post-mortem flight
          // dump should show; hits (evaluations) would drown them out.
          FlightRecorder::Record("failpoint.trigger", InternedName(name));
        }
      });
  return true;
}();
}  // namespace

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

int Histogram::BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // also catches NaN and negatives
  // Smallest i with value <= 2^{(i+1)/4}.
  const int index = static_cast<int>(
      std::ceil(kBucketsPerDoubling * std::log2(value))) - 1;
  if (index < 0) return 0;
  if (index >= kNumBuckets) return kNumBuckets - 1;
  return index;
}

double Histogram::BucketUpperBound(int index) {
  return std::exp2(static_cast<double>(index + 1) / kBucketsPerDoubling);
}

void Histogram::RecordImpl(double value) {
  buckets_[static_cast<std::size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS-add the running sum.
  std::uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      bits, std::bit_cast<std::uint64_t>(std::bit_cast<double>(bits) + value),
      std::memory_order_relaxed)) {
  }
  // CAS-max.
  bits = max_bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(bits) < value &&
         !max_bits_.compare_exchange_weak(
             bits, std::bit_cast<std::uint64_t>(value),
             std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (seen >= rank) {
      // Never report a quantile above the observed maximum.
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  max_bits_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramValue value;
    value.name = name;
    value.count = histogram->count();
    value.sum = histogram->sum();
    value.mean = histogram->mean();
    value.p50 = histogram->Quantile(0.50);
    value.p90 = histogram->Quantile(0.90);
    value.p99 = histogram->Quantile(0.99);
    value.max = histogram->max();
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry& MetricsRegistry::Current() {
  MetricsRegistry* registry = g_current.load(std::memory_order_acquire);
  return registry != nullptr ? *registry : Default();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : previous_(g_current.exchange(registry, std::memory_order_acq_rel)) {}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  g_current.store(previous_, std::memory_order_release);
}

}  // namespace telemetry
}  // namespace phocus
