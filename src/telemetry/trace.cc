#include "telemetry/trace.h"

#include "util/strings.h"

namespace phocus {
namespace telemetry {

namespace {

using Clock = std::chrono::steady_clock;

/// Process-wide trace epoch: fixed the first time any span starts, so
/// start_ns values from different threads share one timeline.
Clock::time_point Epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::uint64_t SinceEpochNs(Clock::time_point t) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t - Epoch())
          .count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

/// Open spans on this thread, outermost first. Raw pointers into the owning
/// TraceSpan objects; LIFO construction/destruction keeps them valid.
thread_local std::vector<SpanRecord*> t_open_spans;

/// Root-span sink override for this thread (see ScopedTraceSink). Null
/// means the process-global collector.
thread_local TraceCollector* t_sink = nullptr;

}  // namespace

std::size_t SpanRecord::TotalSpans() const {
  std::size_t total = 1;
  for (const SpanRecord& child : children) total += child.TotalSpans();
  return total;
}

TraceSpan::TraceSpan(std::string name) {
  if (!Enabled()) return;
  record_ = std::make_unique<SpanRecord>();
  record_->name = std::move(name);
  Epoch();  // latch the epoch before reading the clock: start_ >= epoch
  start_ = Clock::now();
  record_->start_ns = SinceEpochNs(start_);
  t_open_spans.push_back(record_.get());
}

TraceSpan::~TraceSpan() {
  if (record_ != nullptr) Finish(nullptr);
}

void TraceSpan::SetAttribute(const std::string& key, std::string value) {
  if (record_ == nullptr) return;
  record_->attributes.emplace_back(key, std::move(value));
}

void TraceSpan::SetAttribute(const std::string& key, const char* value) {
  SetAttribute(key, std::string(value));
}

void TraceSpan::SetAttribute(const std::string& key, double value) {
  SetAttribute(key, StrFormat("%g", value));
}

void TraceSpan::SetAttribute(const std::string& key, std::uint64_t value) {
  SetAttribute(key, StrFormat("%llu", static_cast<unsigned long long>(value)));
}

SpanRecord TraceSpan::Close() {
  SpanRecord out;
  if (record_ != nullptr) Finish(&out);
  return out;
}

void TraceSpan::Finish(SpanRecord* out) {
  record_->duration_ns = SinceEpochNs(Clock::now()) - record_->start_ns;
  // Pop this span off the thread's open stack. Scoped usage makes it the
  // top; tolerate (skip the pop of) out-of-order teardown rather than UB.
  if (!t_open_spans.empty() && t_open_spans.back() == record_.get()) {
    t_open_spans.pop_back();
  }
  if (out != nullptr) *out = *record_;
  if (!t_open_spans.empty()) {
    t_open_spans.back()->children.push_back(std::move(*record_));
  } else if (t_sink != nullptr) {
    t_sink->Deposit(std::move(*record_));
  } else {
    TraceCollector::Global().Deposit(std::move(*record_));
  }
  record_.reset();
}

void TraceCollector::Deposit(SpanRecord root) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (roots_.size() >= kMaxRoots) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  roots_.push_back(std::move(root));
}

std::vector<SpanRecord> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return roots_;
}

std::vector<SpanRecord> TraceCollector::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out = std::move(roots_);
  roots_.clear();
  return out;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  roots_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

ScopedTraceSink::ScopedTraceSink(TraceCollector* collector)
    : previous_(t_sink) {
  t_sink = collector;
}

ScopedTraceSink::~ScopedTraceSink() { t_sink = previous_; }

std::uint64_t TraceNowNs() {
  Epoch();  // latch before reading so the result is on the span timeline
  return SinceEpochNs(Clock::now());
}

}  // namespace telemetry
}  // namespace phocus
