#include "telemetry/export.h"

#include <algorithm>

#include "util/strings.h"

namespace phocus {
namespace telemetry {

namespace {

Json SpanToJson(const SpanRecord& span) {
  Json out = Json::Object();
  out.Set("name", span.name);
  out.Set("start_ns", static_cast<std::uint64_t>(span.start_ns));
  out.Set("duration_ns", static_cast<std::uint64_t>(span.duration_ns));
  if (!span.attributes.empty()) {
    Json attributes = Json::Object();
    for (const auto& [key, value] : span.attributes) {
      attributes.Set(key, value);
    }
    out.Set("attributes", std::move(attributes));
  }
  if (!span.children.empty()) {
    Json children = Json::Array();
    for (const SpanRecord& child : span.children) {
      children.Append(SpanToJson(child));
    }
    out.Set("children", std::move(children));
  }
  return out;
}

SpanRecord SpanFromJson(const Json& json) {
  SpanRecord span;
  span.name = json.Get("name").AsString();
  span.start_ns =
      static_cast<std::uint64_t>(json.Get("start_ns").AsDouble());
  span.duration_ns =
      static_cast<std::uint64_t>(json.Get("duration_ns").AsDouble());
  if (json.Has("attributes")) {
    for (const auto& [key, value] : json.Get("attributes").entries()) {
      span.attributes.emplace_back(key, value.AsString());
    }
  }
  if (json.Has("children")) {
    for (const Json& child : json.Get("children").items()) {
      span.children.push_back(SpanFromJson(child));
    }
  }
  return span;
}

void RenderSpanLine(const SpanRecord& span, std::uint64_t root_duration,
                    int depth, std::string& out) {
  std::uint64_t child_total = 0;
  for (const SpanRecord& child : span.children) {
    child_total += child.duration_ns;
  }
  const std::uint64_t self_ns =
      span.duration_ns > child_total ? span.duration_ns - child_total : 0;
  const double share =
      root_duration == 0
          ? 100.0
          : 100.0 * static_cast<double>(span.duration_ns) /
                static_cast<double>(root_duration);
  std::string label(static_cast<std::size_t>(2 * depth), ' ');
  label += span.name;
  for (const auto& [key, value] : span.attributes) {
    label += " " + key + "=" + value;
  }
  out += StrFormat("%-56s  %10s  %10s  %5.1f%%\n", label.c_str(),
                   HumanDuration(static_cast<double>(span.duration_ns)).c_str(),
                   HumanDuration(static_cast<double>(self_ns)).c_str(), share);
  for (const SpanRecord& child : span.children) {
    RenderSpanLine(child, root_duration, depth + 1, out);
  }
}

/// "service.endpoint.plan_ns" -> "phocus_service_endpoint_plan_ns".
std::string PrometheusName(const std::string& name) {
  std::string out = "phocus_";
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out += keep ? c : '_';
  }
  return out;
}

}  // namespace

void SortSpans(std::vector<SpanRecord>& spans) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.name != b.name) return a.name < b.name;
              return a.duration_ns < b.duration_ns;
            });
}

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterValue& counter : snapshot.counters) {
    const std::string name = PrometheusName(counter.name);
    out += StrFormat("# TYPE %s counter\n%s %llu\n", name.c_str(),
                     name.c_str(),
                     static_cast<unsigned long long>(counter.value));
  }
  for (const GaugeValue& gauge : snapshot.gauges) {
    const std::string name = PrometheusName(gauge.name);
    out += StrFormat("# TYPE %s gauge\n%s %g\n", name.c_str(), name.c_str(),
                     gauge.value);
  }
  for (const HistogramValue& histogram : snapshot.histograms) {
    const std::string name = PrometheusName(histogram.name);
    out += StrFormat("# TYPE %s summary\n", name.c_str());
    out += StrFormat("%s{quantile=\"0.5\"} %g\n", name.c_str(),
                     histogram.p50);
    out += StrFormat("%s{quantile=\"0.9\"} %g\n", name.c_str(),
                     histogram.p90);
    out += StrFormat("%s{quantile=\"0.99\"} %g\n", name.c_str(),
                     histogram.p99);
    out += StrFormat("%s_sum %g\n", name.c_str(), histogram.sum);
    out += StrFormat("%s_count %llu\n", name.c_str(),
                     static_cast<unsigned long long>(histogram.count));
  }
  return out;
}

std::string HumanDuration(double nanos) {
  if (nanos < 1e3) return StrFormat("%.0fns", nanos);
  if (nanos < 1e6) return StrFormat("%.1fus", nanos / 1e3);
  if (nanos < 1e9) return StrFormat("%.1fms", nanos / 1e6);
  return StrFormat("%.2fs", nanos / 1e9);
}

Json MetricsToJson(const MetricsSnapshot& snapshot) {
  Json out = Json::Object();
  Json counters = Json::Object();
  for (const CounterValue& counter : snapshot.counters) {
    counters.Set(counter.name, counter.value);
  }
  out.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const GaugeValue& gauge : snapshot.gauges) {
    gauges.Set(gauge.name, gauge.value);
  }
  out.Set("gauges", std::move(gauges));
  Json histograms = Json::Object();
  for (const HistogramValue& histogram : snapshot.histograms) {
    Json entry = Json::Object();
    entry.Set("count", histogram.count);
    entry.Set("sum", histogram.sum);
    entry.Set("mean", histogram.mean);
    entry.Set("p50", histogram.p50);
    entry.Set("p90", histogram.p90);
    entry.Set("p99", histogram.p99);
    entry.Set("max", histogram.max);
    histograms.Set(histogram.name, std::move(entry));
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

Json SpansToJson(const std::vector<SpanRecord>& spans) {
  Json out = Json::Array();
  for (const SpanRecord& span : spans) out.Append(SpanToJson(span));
  return out;
}

Json TelemetryToJson(const MetricsSnapshot& snapshot,
                     const std::vector<SpanRecord>& spans,
                     std::uint64_t dropped_spans) {
  Json out = Json::Object();
  Json meta = Json::Object();
  meta.Set("compiled", kCompiled);
  meta.Set("enabled", Enabled());
  out.Set("telemetry", std::move(meta));
  const Json metrics = MetricsToJson(snapshot);
  out.Set("counters", metrics.Get("counters"));
  out.Set("gauges", metrics.Get("gauges"));
  out.Set("histograms", metrics.Get("histograms"));
  // Metric maps are name-sorted by construction; sorting the span roots too
  // makes the whole export independent of thread deposit order.
  std::vector<SpanRecord> ordered = spans;
  SortSpans(ordered);
  out.Set("spans", SpansToJson(ordered));
  out.Set("dropped_spans", dropped_spans);
  return out;
}

MetricsSnapshot MetricsFromJson(const Json& json) {
  MetricsSnapshot snapshot;
  for (const auto& [name, value] : json.Get("counters").entries()) {
    snapshot.counters.push_back(
        {name, static_cast<std::uint64_t>(value.AsDouble())});
  }
  for (const auto& [name, value] : json.Get("gauges").entries()) {
    snapshot.gauges.push_back({name, value.AsDouble()});
  }
  for (const auto& [name, value] : json.Get("histograms").entries()) {
    HistogramValue histogram;
    histogram.name = name;
    histogram.count = static_cast<std::uint64_t>(value.Get("count").AsDouble());
    histogram.sum = value.Get("sum").AsDouble();
    histogram.mean = value.Get("mean").AsDouble();
    histogram.p50 = value.Get("p50").AsDouble();
    histogram.p90 = value.Get("p90").AsDouble();
    histogram.p99 = value.Get("p99").AsDouble();
    histogram.max = value.Get("max").AsDouble();
    snapshot.histograms.push_back(std::move(histogram));
  }
  return snapshot;
}

std::vector<SpanRecord> SpansFromJson(const Json& json) {
  std::vector<SpanRecord> spans;
  for (const Json& span : json.items()) spans.push_back(SpanFromJson(span));
  return spans;
}

TextTable MetricsToTable(const MetricsSnapshot& snapshot) {
  TextTable table;
  table.SetHeader({"metric", "type", "count", "value", "p50", "p90", "p99",
                   "max"});
  for (const CounterValue& counter : snapshot.counters) {
    table.AddRow({counter.name, "counter", "",
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        counter.value)),
                  "", "", "", ""});
  }
  for (const GaugeValue& gauge : snapshot.gauges) {
    table.AddRow({gauge.name, "gauge", "", StrFormat("%g", gauge.value), "",
                  "", "", ""});
  }
  for (const HistogramValue& histogram : snapshot.histograms) {
    table.AddRow({histogram.name, "histogram",
                  StrFormat("%llu",
                            static_cast<unsigned long long>(histogram.count)),
                  StrFormat("%g", histogram.mean),
                  StrFormat("%g", histogram.p50),
                  StrFormat("%g", histogram.p90),
                  StrFormat("%g", histogram.p99),
                  StrFormat("%g", histogram.max)});
  }
  return table;
}

TextTable LatencyTable(const MetricsSnapshot& snapshot,
                       const std::string& prefix) {
  TextTable table;
  table.SetHeader({"stage", "count", "mean", "p50", "p90", "p99", "max"});
  for (const HistogramValue& histogram : snapshot.histograms) {
    if (!prefix.empty() && histogram.name.rfind(prefix, 0) != 0) continue;
    table.AddRow({histogram.name,
                  StrFormat("%llu",
                            static_cast<unsigned long long>(histogram.count)),
                  HumanDuration(histogram.mean), HumanDuration(histogram.p50),
                  HumanDuration(histogram.p90), HumanDuration(histogram.p99),
                  HumanDuration(histogram.max)});
  }
  return table;
}

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  if (spans.empty()) return "(no spans recorded)\n";
  std::string out = StrFormat("%-56s  %10s  %10s  %6s\n", "span", "total",
                              "self", "%root");
  for (const SpanRecord& root : spans) {
    RenderSpanLine(root, root.duration_ns, 0, out);
  }
  return out;
}

void WriteTelemetryJson(const std::string& path) {
  const Json json = TelemetryToJson(MetricsRegistry::Current().Snapshot(),
                                    TraceCollector::Global().Snapshot(),
                                    TraceCollector::Global().dropped());
  WriteFile(path, json.Dump(2) + "\n");
}

void WriteTelemetryCsv(const std::string& path) {
  WriteFile(path,
            MetricsToTable(MetricsRegistry::Current().Snapshot()).RenderCsv());
}

}  // namespace telemetry
}  // namespace phocus
