#ifndef PHOCUS_DATAGEN_VOCABULARY_H_
#define PHOCUS_DATAGEN_VOCABULARY_H_

#include <string>
#include <vector>

/// \file vocabulary.h
/// Word lists used by the generators: an Open-Images-like label vocabulary
/// (synthesized adjective×noun combinations on top of a curated seed list,
/// so the vocabulary can reach the thousands of labels the real dataset
/// has), and per-domain e-commerce vocabularies (product types, brands,
/// attributes) plus query templates.

namespace phocus {

/// Generates `size` distinct label names. The first entries are curated
/// single nouns ("cat", "bicycle", ...); the tail is adjective+noun
/// combinations ("striped kettle"). Deterministic.
std::vector<std::string> MakeLabelVocabulary(std::size_t size);

/// E-commerce domains used by the paper's user study.
enum class EcDomain { kFashion, kElectronics, kHomeGarden };

std::string EcDomainName(EcDomain domain);

struct EcVocabulary {
  std::vector<std::string> product_types;
  std::vector<std::string> brands;
  std::vector<std::string> colors;
  std::vector<std::string> attributes;   ///< e.g. "wireless", "buttoned"
  std::vector<std::string> audiences;    ///< e.g. "women's", "kids"
};

/// The curated vocabulary for one domain.
const EcVocabulary& VocabularyFor(EcDomain domain);

}  // namespace phocus

#endif  // PHOCUS_DATAGEN_VOCABULARY_H_
