#ifndef PHOCUS_DATAGEN_CORPUS_OPS_H_
#define PHOCUS_DATAGEN_CORPUS_OPS_H_

#include <vector>

#include "datagen/corpus.h"
#include "util/rng.h"

/// \file corpus_ops.h
/// Corpus transformations used by the experiments: restriction to a photo
/// subset (Fig. 5d's 100-photo slices, the user study's ~100-photo
/// iterations) and random subsampling.

namespace phocus {

/// Restricts a corpus to `keep` (photo ids into `corpus`). Photo ids are
/// remapped to 0..keep.size()-1 in the order given; subsets are intersected
/// with the kept set and dropped when fewer than `min_subset_size` members
/// survive. Required photos outside `keep` are dropped.
Corpus RestrictCorpus(const Corpus& corpus, const std::vector<PhotoId>& keep,
                      std::size_t min_subset_size = 2);

/// Uniformly samples `count` photos and restricts to them.
Corpus SubsampleCorpus(const Corpus& corpus, std::size_t count, Rng& rng,
                       std::size_t min_subset_size = 2);

}  // namespace phocus

#endif  // PHOCUS_DATAGEN_CORPUS_OPS_H_
