#include "datagen/ecommerce.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "embedding/pipeline.h"
#include "imaging/jpeg_size.h"
#include "imaging/quality.h"
#include "index/search_engine.h"
#include "util/logging.h"
#include "util/samplers.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace phocus {

std::string GenerateProductTitle(EcDomain domain, Rng& rng) {
  const EcVocabulary& vocabulary = VocabularyFor(domain);
  std::string title;
  auto maybe = [&](const std::vector<std::string>& words, double probability) {
    if (rng.Bernoulli(probability)) {
      if (!title.empty()) title += " ";
      title += words[rng.NextBelow(words.size())];
    }
  };
  maybe(vocabulary.brands, 0.7);
  maybe(vocabulary.colors, 0.65);
  maybe(vocabulary.attributes, 0.45);
  if (!title.empty()) title += " ";
  title += vocabulary.product_types[rng.NextBelow(vocabulary.product_types.size())];
  maybe(vocabulary.audiences, 0.35);
  return title;
}

std::vector<QueryLogEntry> GenerateQueryLog(EcDomain domain, std::size_t count,
                                            std::uint64_t seed) {
  const EcVocabulary& v = VocabularyFor(domain);
  Rng rng(seed ^ 0xec0123ULL);
  std::vector<std::string> queries;
  std::unordered_set<std::string> seen;
  auto push = [&](const std::string& query) {
    if (seen.insert(query).second) queries.push_back(query);
  };
  auto pick = [&](const std::vector<std::string>& words) {
    return words[rng.NextBelow(words.size())];
  };
  // Head queries: bare product types (these dominate real logs).
  for (const std::string& type : v.product_types) push(type);
  // Tail: templated combinations, generated until we have enough.
  std::size_t guard = 0;
  while (queries.size() < count && guard++ < count * 50) {
    switch (rng.NextBelow(5)) {
      case 0: push(pick(v.colors) + " " + pick(v.product_types)); break;
      case 1: push(pick(v.brands) + " " + pick(v.product_types)); break;
      case 2:
        push(pick(v.colors) + " " + pick(v.brands) + " " + pick(v.product_types));
        break;
      case 3: push(pick(v.audiences) + " " + pick(v.product_types)); break;
      default: push(pick(v.attributes) + " " + pick(v.product_types)); break;
    }
  }
  PHOCUS_CHECK(queries.size() >= count,
               "vocabulary too small for the requested query count");
  queries.resize(count);

  // Zipf frequencies over a modeled quarter of traffic.
  const ZipfSampler zipf(count, 1.0);
  std::vector<QueryLogEntry> log;
  log.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    log.push_back({queries[i], 1e7 * zipf.Probability(i)});
  }
  return log;
}

Corpus GenerateEcommerceCorpus(const EcommerceOptions& options) {
  PHOCUS_CHECK(options.num_products > 0, "num_products must be positive");
  Rng rng(options.seed);
  const EcVocabulary& vocabulary = VocabularyFor(options.domain);

  // Phase 1: catalog. Products of the same type share a visual style; some
  // shots are near-duplicates of an earlier same-type shot.
  struct Draft {
    std::string title;
    SceneParams scene;
    double resolution_scale;
  };
  std::vector<Draft> drafts;
  drafts.reserve(options.num_products);
  std::unordered_map<std::string, SceneStyle> style_cache;
  std::unordered_map<std::string, SceneParams> last_scene_of_type;
  for (std::size_t i = 0; i < options.num_products; ++i) {
    Draft draft;
    draft.title = GenerateProductTitle(options.domain, rng);
    // Style key: the product type (last 1-2 tokens work, but hashing the
    // full title over-fragments); find the type substring.
    std::string type_key;
    for (const std::string& type : vocabulary.product_types) {
      if (draft.title.find(type) != std::string::npos &&
          type.size() > type_key.size()) {
        type_key = type;
      }
    }
    if (type_key.empty()) type_key = draft.title;
    auto style_it = style_cache.find(type_key);
    if (style_it == style_cache.end()) {
      style_it = style_cache.emplace(type_key, StyleForCategory(type_key)).first;
    }
    auto last_it = last_scene_of_type.find(type_key);
    if (last_it != last_scene_of_type.end() &&
        rng.Bernoulli(options.near_duplicate_prob)) {
      draft.scene = JitterScene(last_it->second, rng, 0.35);
    } else {
      draft.scene = SampleScene(style_it->second, rng);
    }
    last_scene_of_type[type_key] = draft.scene;
    const double tier = rng.UniformDouble();
    draft.resolution_scale = tier < 0.15 ? 3.0 : (tier < 0.7 ? 6.5 : 11.0);
    drafts.push_back(std::move(draft));
  }

  // Phase 2: render + embed + size.
  EmbeddingPipelineOptions pipeline_options;
  pipeline_options.working_size = options.render_size;
  pipeline_options.projection_dim = 160;  // keeps large archives compact
  const EmbeddingPipeline pipeline(pipeline_options);

  Corpus corpus;
  corpus.seed = options.seed;
  corpus.name = "EC-" + EcDomainName(options.domain);
  corpus.photos.resize(drafts.size());
  Rng exif_rng = rng.Fork(0x1234);
  ThreadPool::Global().ParallelFor(drafts.size(), [&](std::size_t i) {
    const Draft& draft = drafts[i];
    CorpusPhoto& photo = corpus.photos[i];
    const Image image =
        RenderScene(draft.scene, options.render_size, options.render_size);
    photo.embedding = pipeline.Extract(image);
    photo.quality = AssessQuality(image).overall;
    JpegSizeOptions size_options;
    size_options.resolution_scale = draft.resolution_scale;
    photo.bytes = EstimateJpegBytes(image, size_options);
    photo.title = draft.title;
    photo.scene = draft.scene;
  });
  // Studio shoots happen in one place/time window; EXIF is sampled
  // sequentially (cheap) for determinism.
  for (CorpusPhoto& photo : corpus.photos) {
    photo.exif = SampleExif(exif_rng, 1'650'000'000, 40.0, -74.0);
  }

  // Phase 3: query log → landing pages via BM25 retrieval.
  SearchEngine engine;
  for (std::size_t i = 0; i < corpus.photos.size(); ++i) {
    engine.AddDocument(static_cast<SearchEngine::DocId>(i),
                       corpus.photos[i].title);
  }
  engine.Finalize();

  // Over-generate queries; keep the first num_queries that return enough
  // results (Table 2 reports exactly 250 subsets per domain).
  const std::vector<QueryLogEntry> log =
      GenerateQueryLog(options.domain, options.num_queries * 3, options.seed);
  double total_frequency = 0.0;
  for (const QueryLogEntry& entry : log) total_frequency += entry.frequency;

  for (const QueryLogEntry& entry : log) {
    if (corpus.subsets.size() >= options.num_queries) break;
    const std::vector<SearchEngine::Hit> hits =
        engine.Search(entry.text, options.max_results_per_query);
    if (hits.size() < 3) continue;
    SubsetSpec spec;
    spec.name = entry.text;
    // Landing-page importance: normalized visit/query frequency (§5.1).
    spec.weight = entry.frequency / total_frequency;
    for (const SearchEngine::Hit& hit : hits) {
      spec.members.push_back(hit.doc);
      // Relevance blends retrieval score with image quality (§5.1).
      spec.relevance.push_back(hit.score *
                               (0.5 + 0.5 * corpus.photos[hit.doc].quality));
    }
    corpus.subsets.push_back(std::move(spec));
  }
  PHOCUS_CHECK(corpus.subsets.size() == options.num_queries,
               "could not realize the requested number of landing pages");

  // Phase 4: contractual retention (S0): required photos must be ones that
  // actually appear on pages.
  if (options.required_fraction > 0.0) {
    std::vector<PhotoId> on_pages;
    {
      std::unordered_set<PhotoId> unique;
      for (const SubsetSpec& spec : corpus.subsets) {
        unique.insert(spec.members.begin(), spec.members.end());
      }
      on_pages.assign(unique.begin(), unique.end());
      std::sort(on_pages.begin(), on_pages.end());
    }
    const std::size_t count = std::min(
        on_pages.size(),
        static_cast<std::size_t>(options.required_fraction *
                                 static_cast<double>(corpus.num_photos())));
    for (std::size_t idx : rng.SampleWithoutReplacement(on_pages.size(), count)) {
      corpus.required.push_back(on_pages[idx]);
    }
    std::sort(corpus.required.begin(), corpus.required.end());
  }
  return corpus;
}

}  // namespace phocus
