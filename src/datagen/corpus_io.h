#ifndef PHOCUS_DATAGEN_CORPUS_IO_H_
#define PHOCUS_DATAGEN_CORPUS_IO_H_

#include <string>

#include "datagen/corpus.h"

/// \file corpus_io.h
/// Compact binary (de)serialization of corpora. A Table-2-sized corpus
/// carries hundreds of thousands of embedding floats, so JSON is the wrong
/// tool; this format stores them raw. Used both as a public export format
/// and as the bench harness's generation cache (see CachedTable2Corpus in
/// table2.h): the large datasets are generated once and re-read in
/// milliseconds by every figure that needs them.

namespace phocus {

/// Serializes a corpus to the binary format (version-tagged, magic-prefixed).
std::string EncodeCorpus(const Corpus& corpus);

/// Parses a corpus; throws CheckFailure on malformed/truncated input or
/// version mismatch.
Corpus DecodeCorpus(const std::string& bytes);

/// File convenience wrappers.
void SaveCorpus(const Corpus& corpus, const std::string& path);
Corpus LoadCorpus(const std::string& path);

}  // namespace phocus

#endif  // PHOCUS_DATAGEN_CORPUS_IO_H_
