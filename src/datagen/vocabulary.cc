#include "datagen/vocabulary.h"

#include <array>

#include "util/logging.h"

namespace phocus {

namespace {

constexpr std::array<const char*, 60> kSeedNouns = {
    "cat",        "dog",      "bicycle",  "car",       "tree",     "flower",
    "bird",       "house",    "mountain", "beach",     "bridge",   "boat",
    "train",      "airplane", "guitar",   "piano",     "book",     "bookshelf",
    "chair",      "table",    "lamp",     "clock",     "bottle",   "cup",
    "plate",      "fruit",    "cake",     "pizza",     "sandwich", "salad",
    "shirt",      "dress",    "shoe",     "hat",       "bag",      "watch",
    "phone",      "laptop",   "camera",   "television","horse",    "cow",
    "sheep",      "fish",     "butterfly","spider",    "snow",     "river",
    "waterfall",  "castle",   "statue",   "fountain",  "garden",   "street",
    "market",     "museum",   "stadium",  "festival",  "sunset",   "portrait"};

constexpr std::array<const char*, 24> kAdjectives = {
    "red",     "blue",    "green",   "yellow", "black",  "white",
    "striped", "spotted", "vintage", "modern", "rustic", "shiny",
    "wooden",  "metal",   "glass",   "small",  "large",  "tiny",
    "giant",   "bright",  "dark",    "pale",   "curved", "angular"};

constexpr std::array<const char*, 20> kSuffixNouns = {
    "kettle",  "vase",   "mirror", "carpet", "pillow",  "blanket", "basket",
    "ladder",  "bucket", "fence",  "gate",   "window",  "door",    "roof",
    "tower",   "tent",   "canoe",  "sled",   "wagon",   "bench"};

}  // namespace

std::vector<std::string> MakeLabelVocabulary(std::size_t size) {
  std::vector<std::string> labels;
  labels.reserve(size);
  for (const char* noun : kSeedNouns) {
    if (labels.size() >= size) return labels;
    labels.emplace_back(noun);
  }
  // adjective × seed-noun combinations.
  for (const char* adjective : kAdjectives) {
    for (const char* noun : kSeedNouns) {
      if (labels.size() >= size) return labels;
      labels.push_back(std::string(adjective) + " " + noun);
    }
  }
  // adjective × suffix-noun combinations.
  for (const char* adjective : kAdjectives) {
    for (const char* noun : kSuffixNouns) {
      if (labels.size() >= size) return labels;
      labels.push_back(std::string(adjective) + " " + noun);
    }
  }
  // adjective × adjective × noun for very large vocabularies.
  for (const char* first : kAdjectives) {
    for (const char* second : kAdjectives) {
      if (first == second) continue;
      for (const char* noun : kSeedNouns) {
        if (labels.size() >= size) return labels;
        labels.push_back(std::string(first) + " " + second + " " + noun);
      }
      for (const char* noun : kSuffixNouns) {
        if (labels.size() >= size) return labels;
        labels.push_back(std::string(first) + " " + second + " " + noun);
      }
    }
  }
  // Three-adjective tier for very large vocabularies (the long tail's exact
  // wording is immaterial; only distinctness matters).
  for (const char* first : kAdjectives) {
    for (const char* second : kAdjectives) {
      for (const char* third : kAdjectives) {
        if (first == second || second == third || first == third) continue;
        for (const char* noun : kSeedNouns) {
          if (labels.size() >= size) return labels;
          labels.push_back(std::string(first) + " " + second + " " + third +
                           " " + noun);
        }
      }
    }
  }
  PHOCUS_CHECK(labels.size() >= size,
               "requested vocabulary larger than the generator can produce");
  return labels;
}

std::string EcDomainName(EcDomain domain) {
  switch (domain) {
    case EcDomain::kFashion: return "Fashion";
    case EcDomain::kElectronics: return "Electronics";
    case EcDomain::kHomeGarden: return "Home & Garden";
  }
  return "?";
}

const EcVocabulary& VocabularyFor(EcDomain domain) {
  static const EcVocabulary fashion = {
      /*product_types=*/{"shirt", "t-shirt", "dress", "jeans", "skirt",
                         "jacket", "coat", "sweater", "hoodie", "shorts",
                         "sneakers", "boots", "sandals", "heels", "scarf",
                         "hat", "belt", "handbag", "backpack", "socks",
                         "polo shirt", "dress shirt", "leggings", "blazer"},
      /*brands=*/{"adidas", "nike", "puma", "zara", "levis", "gap", "uniqlo",
                  "gucci", "prada", "columbia", "reebok", "lacoste"},
      /*colors=*/{"black", "white", "red", "blue", "green", "grey", "navy",
                  "beige", "pink", "brown"},
      /*attributes=*/{"buttoned", "slim fit", "oversized", "waterproof",
                      "cotton", "leather", "wool", "denim", "striped",
                      "floral"},
      /*audiences=*/{"women's", "men's", "kids", "unisex"}};
  static const EcVocabulary electronics = {
      /*product_types=*/{"smartphone", "laptop", "tablet", "headphones",
                         "earbuds", "smartwatch", "camera", "monitor",
                         "keyboard", "mouse", "router", "speaker",
                         "television", "drone", "charger", "power bank",
                         "game console", "printer", "hard drive", "webcam",
                         "microphone", "projector", "e-reader", "soundbar"},
      /*brands=*/{"samsung", "apple", "sony", "lg", "dell", "hp", "lenovo",
                  "asus", "logitech", "canon", "nikon", "bose"},
      /*colors=*/{"black", "white", "silver", "space grey", "gold", "blue",
                  "red", "graphite"},
      /*attributes=*/{"wireless", "bluetooth", "4k", "gaming", "portable",
                      "noise cancelling", "touchscreen", "ultra slim",
                      "fast charging", "refurbished"},
      /*audiences=*/{"pro", "home", "office", "travel"}};
  static const EcVocabulary home_garden = {
      /*product_types=*/{"office chair", "sofa", "dining table", "bookshelf",
                         "bed frame", "mattress", "desk", "wardrobe", "rug",
                         "curtains", "lamp", "mirror", "garden hose",
                         "lawn mower", "grill", "planter", "patio set",
                         "toolbox", "ladder", "vacuum cleaner", "kettle",
                         "cookware set", "blender", "coffee maker"},
      /*brands=*/{"ikea", "ashley", "wayfair", "dyson", "bosch", "philips",
                  "kitchenaid", "weber", "makita", "dewalt", "tefal",
                  "keurig"},
      /*colors=*/{"white", "black", "oak", "walnut", "grey", "beige", "green",
                  "terracotta"},
      /*attributes=*/{"ergonomic", "foldable", "outdoor", "indoor", "cordless",
                      "stainless steel", "ceramic", "adjustable", "compact",
                      "heavy duty"},
      /*audiences=*/{"family", "studio", "patio", "kitchen"}};
  switch (domain) {
    case EcDomain::kFashion: return fashion;
    case EcDomain::kElectronics: return electronics;
    case EcDomain::kHomeGarden: return home_garden;
  }
  return fashion;
}

}  // namespace phocus
