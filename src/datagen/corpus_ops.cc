#include "datagen/corpus_ops.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace phocus {

Corpus RestrictCorpus(const Corpus& corpus, const std::vector<PhotoId>& keep,
                      std::size_t min_subset_size) {
  Corpus out;
  out.name = corpus.name + "/restricted";
  out.seed = corpus.seed;
  std::unordered_map<PhotoId, PhotoId> remap;
  remap.reserve(keep.size());
  for (PhotoId p : keep) {
    PHOCUS_CHECK(p < corpus.photos.size(), "kept photo id out of range");
    PHOCUS_CHECK(remap.emplace(p, static_cast<PhotoId>(out.photos.size())).second,
                 "duplicate photo id in keep list");
    out.photos.push_back(corpus.photos[p]);
  }
  for (const SubsetSpec& spec : corpus.subsets) {
    SubsetSpec restricted;
    restricted.name = spec.name;
    restricted.weight = spec.weight;
    for (std::size_t i = 0; i < spec.members.size(); ++i) {
      auto it = remap.find(spec.members[i]);
      if (it == remap.end()) continue;
      restricted.members.push_back(it->second);
      restricted.relevance.push_back(
          spec.relevance.empty() ? 1.0 : spec.relevance[i]);
    }
    if (restricted.members.size() >= min_subset_size) {
      out.subsets.push_back(std::move(restricted));
    }
  }
  for (PhotoId p : corpus.required) {
    auto it = remap.find(p);
    if (it != remap.end()) out.required.push_back(it->second);
  }
  std::sort(out.required.begin(), out.required.end());
  return out;
}

Corpus SubsampleCorpus(const Corpus& corpus, std::size_t count, Rng& rng,
                       std::size_t min_subset_size) {
  PHOCUS_CHECK(count <= corpus.photos.size(),
               "cannot subsample more photos than the corpus holds");
  std::vector<PhotoId> keep;
  keep.reserve(count);
  for (std::size_t idx : rng.SampleWithoutReplacement(corpus.photos.size(),
                                                      count)) {
    keep.push_back(static_cast<PhotoId>(idx));
  }
  std::sort(keep.begin(), keep.end());
  return RestrictCorpus(corpus, keep, min_subset_size);
}

}  // namespace phocus
