#include "datagen/table2.h"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "datagen/corpus_io.h"
#include "datagen/ecommerce.h"
#include "datagen/openimages.h"
#include "util/logging.h"
#include "util/strings.h"

namespace phocus {

const std::vector<std::string>& Table2DatasetNames() {
  static const std::vector<std::string> names = {
      "P-1K",       "P-5K",           "P-10K",
      "P-50K",      "P-100K",         "EC-Fashion",
      "EC-Electronics", "EC-Home & Garden"};
  return names;
}

Corpus BuildTable2Corpus(const std::string& name, std::size_t scale) {
  PHOCUS_CHECK(scale >= 1, "scale must be >= 1");
  auto open_images = [&](std::size_t photos, std::uint64_t seed) {
    OpenImagesOptions options;
    options.num_photos = photos / scale;
    options.seed = seed;
    Corpus corpus = GenerateOpenImagesCorpus(options);
    corpus.name = name;
    return corpus;
  };
  auto ecommerce = [&](EcDomain domain, std::size_t products,
                       std::uint64_t seed) {
    EcommerceOptions options;
    options.domain = domain;
    options.num_products = products / scale;
    options.seed = seed;
    Corpus corpus = GenerateEcommerceCorpus(options);
    corpus.name = name;
    return corpus;
  };
  if (name == "P-1K") return open_images(1000, 101);
  if (name == "P-5K") return open_images(5000, 102);
  if (name == "P-10K") return open_images(10000, 103);
  if (name == "P-50K") return open_images(50000, 104);
  if (name == "P-100K") return open_images(100000, 105);
  // Table 2 photo counts: Fashion 18745, Electronics 22783, H&G 19235.
  if (name == "EC-Fashion") return ecommerce(EcDomain::kFashion, 18745, 201);
  if (name == "EC-Electronics") {
    return ecommerce(EcDomain::kElectronics, 22783, 202);
  }
  if (name == "EC-Home & Garden") {
    return ecommerce(EcDomain::kHomeGarden, 19235, 203);
  }
  PHOCUS_CHECK(false, "unknown Table 2 dataset: " + name);
  return {};
}

Corpus CachedTable2Corpus(const std::string& name, std::size_t scale) {
  const char* cache_dir = std::getenv("PHOCUS_CACHE_DIR");
  if (cache_dir == nullptr || cache_dir[0] == '\0') {
    return BuildTable2Corpus(name, scale);
  }
  // File-system-safe cache key.
  std::string key;
  for (char c : name) key.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  const std::string path =
      StrFormat("%s/%s_scale%zu.phocorp", cache_dir, key.c_str(), scale);
  if (std::ifstream(path).good()) {
    Corpus corpus = LoadCorpus(path);
    PHOCUS_CHECK(corpus.name == name, "cache collision for " + path);
    return corpus;
  }
  Corpus corpus = BuildTable2Corpus(name, scale);
  SaveCorpus(corpus, path);
  return corpus;
}

}  // namespace phocus
