#ifndef PHOCUS_DATAGEN_OPENIMAGES_H_
#define PHOCUS_DATAGEN_OPENIMAGES_H_

#include <cstdint>

#include "datagen/corpus.h"

/// \file openimages.h
/// Generator for the public "P" datasets of Table 2, mirroring how the paper
/// built them from Open Images (§5.2): photos carry labels with confidence
/// scores; every observed label becomes a pre-defined subset whose members
/// are the photos carrying it, relevance is the label confidence, and subset
/// importance is the label's frequency in the (much larger) full source.

namespace phocus {

struct OpenImagesOptions {
  std::size_t num_photos = 1000;
  std::uint64_t seed = 1;
  /// The full-source vocabulary (the real dataset has >6000 labels). Only a
  /// fraction appears in a sample; that fraction forms the subsets.
  std::size_t vocabulary_size = 200000;
  /// Zipf skew of label popularity; calibrates how many distinct labels (=
  /// subsets) a sample of a given size observes.
  double label_zipf_exponent = 1.8;
  /// Labels per photo: 1 primary + up to (max_labels_per_photo − 1)
  /// co-occurring secondaries.
  int max_labels_per_photo = 4;
  /// Probability that a photo is a near-duplicate re-shot of the previous
  /// photo (same labels, jittered scene) — the redundancy PAR exploits.
  double near_duplicate_prob = 0.25;
  /// Rendered raster edge; embeddings are computed at this size.
  int render_size = 64;
  /// Fraction of photos marked policy-required (S0).
  double required_fraction = 0.0;
};

Corpus GenerateOpenImagesCorpus(const OpenImagesOptions& options);

}  // namespace phocus

#endif  // PHOCUS_DATAGEN_OPENIMAGES_H_
