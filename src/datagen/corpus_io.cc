#include "datagen/corpus_io.h"

#include "util/binary_io.h"
#include "util/json.h"  // ReadFile/WriteFile
#include "util/logging.h"

namespace phocus {

namespace {

constexpr std::uint64_t kMagic = 0x50484f434f525031ULL;  // "PHOCORP1"
constexpr std::uint32_t kVersion = 1;

void WriteScene(BinaryWriter& writer, const SceneParams& scene) {
  auto write_rgb = [&](Rgb color) {
    writer.WriteU8(color.r);
    writer.WriteU8(color.g);
    writer.WriteU8(color.b);
  };
  write_rgb(scene.background_top);
  write_rgb(scene.background_bottom);
  writer.WriteU32(static_cast<std::uint32_t>(scene.shapes.size()));
  for (const SceneShape& shape : scene.shapes) {
    writer.WriteU8(static_cast<std::uint8_t>(shape.kind));
    writer.WriteF32(shape.center_x);
    writer.WriteF32(shape.center_y);
    writer.WriteF32(shape.size);
    writer.WriteF32(shape.angle);
    write_rgb(shape.color);
  }
  writer.WriteF32(scene.noise_sigma);
  writer.WriteF32(scene.blur_sigma);
  writer.WriteF32(scene.brightness);
  writer.WriteU64(scene.noise_seed);
}

SceneParams ReadScene(BinaryReader& reader) {
  auto read_rgb = [&]() {
    Rgb color;
    color.r = reader.ReadU8();
    color.g = reader.ReadU8();
    color.b = reader.ReadU8();
    return color;
  };
  SceneParams scene;
  scene.background_top = read_rgb();
  scene.background_bottom = read_rgb();
  const std::uint32_t shapes = reader.ReadU32();
  PHOCUS_CHECK(shapes <= 10'000, "corrupt scene: implausible shape count");
  scene.shapes.reserve(shapes);
  for (std::uint32_t i = 0; i < shapes; ++i) {
    SceneShape shape;
    const std::uint8_t kind = reader.ReadU8();
    PHOCUS_CHECK(kind <= static_cast<std::uint8_t>(SceneShape::Kind::kStripe),
                 "corrupt scene shape kind");
    shape.kind = static_cast<SceneShape::Kind>(kind);
    shape.center_x = reader.ReadF32();
    shape.center_y = reader.ReadF32();
    shape.size = reader.ReadF32();
    shape.angle = reader.ReadF32();
    shape.color = read_rgb();
    scene.shapes.push_back(shape);
  }
  scene.noise_sigma = reader.ReadF32();
  scene.blur_sigma = reader.ReadF32();
  scene.brightness = reader.ReadF32();
  scene.noise_seed = reader.ReadU64();
  return scene;
}

void WriteExif(BinaryWriter& writer, const ExifMetadata& exif) {
  writer.WriteI64(exif.timestamp_unix);
  writer.WriteString(exif.camera_model);
  writer.WriteU32(static_cast<std::uint32_t>(exif.iso));
  writer.WriteF64(exif.exposure_ms);
  writer.WriteF64(exif.focal_mm);
  writer.WriteF64(exif.latitude);
  writer.WriteF64(exif.longitude);
}

ExifMetadata ReadExif(BinaryReader& reader) {
  ExifMetadata exif;
  exif.timestamp_unix = reader.ReadI64();
  exif.camera_model = reader.ReadString();
  exif.iso = static_cast<int>(reader.ReadU32());
  exif.exposure_ms = reader.ReadF64();
  exif.focal_mm = reader.ReadF64();
  exif.latitude = reader.ReadF64();
  exif.longitude = reader.ReadF64();
  return exif;
}

}  // namespace

std::string EncodeCorpus(const Corpus& corpus) {
  BinaryWriter writer;
  writer.WriteU64(kMagic);
  writer.WriteU32(kVersion);
  writer.WriteString(corpus.name);
  writer.WriteU64(corpus.seed);

  writer.WriteU32(static_cast<std::uint32_t>(corpus.photos.size()));
  for (const CorpusPhoto& photo : corpus.photos) {
    writer.WriteF32Vector(photo.embedding);
    WriteExif(writer, photo.exif);
    writer.WriteU64(photo.bytes);
    writer.WriteF64(photo.quality);
    writer.WriteString(photo.title);
    WriteScene(writer, photo.scene);
  }

  writer.WriteU32(static_cast<std::uint32_t>(corpus.subsets.size()));
  for (const SubsetSpec& subset : corpus.subsets) {
    writer.WriteString(subset.name);
    writer.WriteF64(subset.weight);
    writer.WriteU32Vector(subset.members);
    writer.WriteF64Vector(subset.relevance);
  }

  std::vector<std::uint32_t> required(corpus.required.begin(),
                                      corpus.required.end());
  writer.WriteU32Vector(required);
  return writer.TakeBuffer();
}

Corpus DecodeCorpus(const std::string& bytes) {
  BinaryReader reader(bytes);
  PHOCUS_CHECK(reader.ReadU64() == kMagic, "not a PHOcus corpus file");
  PHOCUS_CHECK(reader.ReadU32() == kVersion, "unsupported corpus version");
  Corpus corpus;
  corpus.name = reader.ReadString();
  corpus.seed = reader.ReadU64();

  const std::uint32_t photos = reader.ReadU32();
  for (std::uint32_t i = 0; i < photos; ++i) {
    CorpusPhoto photo;
    photo.embedding = reader.ReadF32Vector();
    photo.exif = ReadExif(reader);
    photo.bytes = reader.ReadU64();
    photo.quality = reader.ReadF64();
    photo.title = reader.ReadString();
    photo.scene = ReadScene(reader);
    corpus.photos.push_back(std::move(photo));
  }

  const std::uint32_t subsets = reader.ReadU32();
  for (std::uint32_t i = 0; i < subsets; ++i) {
    SubsetSpec subset;
    subset.name = reader.ReadString();
    subset.weight = reader.ReadF64();
    subset.members = reader.ReadU32Vector();
    subset.relevance = reader.ReadF64Vector();
    PHOCUS_CHECK(subset.relevance.empty() ||
                     subset.relevance.size() == subset.members.size(),
                 "corrupt subset: relevance misaligned");
    for (PhotoId p : subset.members) {
      PHOCUS_CHECK(p < corpus.photos.size(), "corrupt subset member id");
    }
    corpus.subsets.push_back(std::move(subset));
  }

  for (std::uint32_t p : reader.ReadU32Vector()) {
    PHOCUS_CHECK(p < corpus.photos.size(), "corrupt required photo id");
    corpus.required.push_back(p);
  }
  PHOCUS_CHECK(reader.AtEnd(), "trailing bytes after corpus payload");
  return corpus;
}

void SaveCorpus(const Corpus& corpus, const std::string& path) {
  WriteFile(path, EncodeCorpus(corpus));
}

Corpus LoadCorpus(const std::string& path) {
  return DecodeCorpus(ReadFile(path));
}

}  // namespace phocus
