#ifndef PHOCUS_DATAGEN_ECOMMERCE_H_
#define PHOCUS_DATAGEN_ECOMMERCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "datagen/vocabulary.h"

/// \file ecommerce.h
/// Generator for the private "EC" datasets of Table 2 (§5.2): a synthetic
/// product catalog per domain, a Zipf query log whose top-k queries define
/// the pre-defined subsets (one per landing page), BM25 retrieval over
/// product titles for membership + relevance (blended with image quality, as
/// §5.1 describes), and query frequency as subset importance.

namespace phocus {

struct EcommerceOptions {
  EcDomain domain = EcDomain::kFashion;
  std::size_t num_products = 20000;
  /// Top-k most frequent queries become landing pages (paper: 250).
  std::size_t num_queries = 250;
  std::uint64_t seed = 7;
  int render_size = 64;
  /// Cap on the result set per query (the page's relevant-photo pool).
  std::size_t max_results_per_query = 120;
  /// Fraction of photos under "legal contract" retention (S0).
  double required_fraction = 0.003;
  /// Probability a product re-uses (near-duplicates) another product's shot
  /// of the same type — catalogs are full of such shots.
  double near_duplicate_prob = 0.2;
};

Corpus GenerateEcommerceCorpus(const EcommerceOptions& options);

/// A generated search query with its log frequency (used by the user-study
/// harness too).
struct QueryLogEntry {
  std::string text;
  double frequency = 0.0;
};

/// The synthetic quarter query log for a domain: `count` distinct query
/// strings with Zipf frequencies, most frequent first.
std::vector<QueryLogEntry> GenerateQueryLog(EcDomain domain, std::size_t count,
                                            std::uint64_t seed);

/// A generated product title like "adidas black polo shirt men's".
std::string GenerateProductTitle(EcDomain domain, Rng& rng);

}  // namespace phocus

#endif  // PHOCUS_DATAGEN_ECOMMERCE_H_
