#include "datagen/corpus.h"

namespace phocus {

Cost Corpus::TotalBytes() const {
  Cost total = 0;
  for (const CorpusPhoto& photo : photos) total += photo.bytes;
  return total;
}

double Corpus::MeanSubsetSize() const {
  if (subsets.empty()) return 0.0;
  std::size_t members = 0;
  for (const SubsetSpec& subset : subsets) members += subset.members.size();
  return static_cast<double>(members) / static_cast<double>(subsets.size());
}

}  // namespace phocus
