#include "datagen/openimages.h"

#include <algorithm>
#include <unordered_map>

#include "datagen/vocabulary.h"
#include "embedding/pipeline.h"
#include "imaging/jpeg_size.h"
#include "imaging/quality.h"
#include "util/logging.h"
#include "util/samplers.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace phocus {

namespace {

/// A deterministic pseudo-random "related label" map creating co-occurrence
/// structure: each label has a pool of companions it tends to appear with
/// (a bicycle photo often also shows a street, a helmet...).
std::size_t RelatedLabel(std::size_t label, std::size_t slot,
                         std::size_t vocabulary_size) {
  std::uint64_t h = (static_cast<std::uint64_t>(label) << 8) ^ (slot * 0x9e37ULL);
  h = SplitMix64(h);
  return static_cast<std::size_t>(h % vocabulary_size);
}

struct DraftPhoto {
  SceneParams scene;
  std::vector<std::pair<std::size_t, float>> labels;  // (label id, confidence)
  double resolution_scale = 3.0;
  ExifMetadata exif;
};

}  // namespace

Corpus GenerateOpenImagesCorpus(const OpenImagesOptions& options) {
  PHOCUS_CHECK(options.num_photos > 0, "num_photos must be positive");
  PHOCUS_CHECK(options.max_labels_per_photo >= 1, "need at least one label");
  Rng rng(options.seed);
  const std::vector<std::string> vocabulary =
      MakeLabelVocabulary(options.vocabulary_size);
  const ZipfSampler label_popularity(options.vocabulary_size,
                                     options.label_zipf_exponent);

  // Phase 1: draft photos (scene parameters + labels), sequential because of
  // the near-duplicate chaining.
  std::vector<DraftPhoto> drafts;
  drafts.reserve(options.num_photos);
  std::unordered_map<std::size_t, SceneStyle> style_cache;
  auto style_of = [&](std::size_t label) -> const SceneStyle& {
    auto it = style_cache.find(label);
    if (it == style_cache.end()) {
      it = style_cache.emplace(label, StyleForCategory(vocabulary[label])).first;
    }
    return it->second;
  };

  while (drafts.size() < options.num_photos) {
    if (!drafts.empty() && rng.Bernoulli(options.near_duplicate_prob)) {
      // Near-duplicate of the previous photo: same labels, jittered look and
      // slightly perturbed confidences.
      DraftPhoto duplicate = drafts.back();
      duplicate.scene = JitterScene(duplicate.scene, rng, 0.3);
      for (auto& [label, confidence] : duplicate.labels) {
        (void)label;
        confidence = std::clamp(
            confidence + static_cast<float>(rng.Normal(0.0, 0.05)), 0.05f, 1.0f);
      }
      duplicate.exif.timestamp_unix += rng.UniformInt(1, 120);  // burst shot
      drafts.push_back(std::move(duplicate));
      continue;
    }
    DraftPhoto draft;
    const std::size_t primary = label_popularity.Sample(rng);
    draft.scene = SampleScene(style_of(primary), rng);
    draft.labels.emplace_back(
        primary, static_cast<float>(rng.Uniform(0.7, 1.0)));
    const int secondaries =
        static_cast<int>(rng.NextBelow(
            static_cast<std::uint64_t>(options.max_labels_per_photo)));
    for (int s = 0; s < secondaries; ++s) {
      // Mostly co-occurring companions, occasionally an unrelated label.
      // Mostly co-occurring companions; otherwise a fresh long-tail label
      // (uniform over the full vocabulary), which is what makes the number
      // of observed labels keep growing with the sample size as in Table 2.
      const std::size_t label =
          rng.Bernoulli(0.7)
              ? RelatedLabel(primary, rng.NextBelow(6), options.vocabulary_size)
              : static_cast<std::size_t>(rng.NextBelow(options.vocabulary_size));
      bool duplicate_label = false;
      for (const auto& [existing, c] : draft.labels) {
        (void)c;
        if (existing == label) duplicate_label = true;
      }
      if (duplicate_label) continue;
      draft.labels.emplace_back(label,
                                static_cast<float>(rng.Uniform(0.3, 0.9)));
    }
    // Photos of the same primary label cluster in time/space (events).
    Rng event_rng = Rng(options.seed ^ 0xabcdefULL).Fork(primary);
    const std::int64_t event_center =
        1'500'000'000 + static_cast<std::int64_t>(event_rng.NextBelow(200'000'000));
    draft.exif = SampleExif(rng, event_center, event_rng.Uniform(-60.0, 60.0),
                            event_rng.Uniform(-180.0, 180.0));
    // Stored resolution tier: thumbnail / web / original.
    const double tier = rng.UniformDouble();
    draft.resolution_scale = tier < 0.2 ? 3.0 : (tier < 0.75 ? 6.5 : 11.0);
    drafts.push_back(std::move(draft));
  }

  // Phase 2: render + embed + size (parallel; drafts are now immutable).
  EmbeddingPipelineOptions pipeline_options;
  pipeline_options.working_size = options.render_size;
  pipeline_options.projection_dim = 160;  // keeps large archives compact
  const EmbeddingPipeline pipeline(pipeline_options);

  Corpus corpus;
  corpus.seed = options.seed;
  corpus.name = StrFormat("P-%zu", options.num_photos);
  corpus.photos.resize(drafts.size());
  ThreadPool::Global().ParallelFor(drafts.size(), [&](std::size_t i) {
    const DraftPhoto& draft = drafts[i];
    CorpusPhoto& photo = corpus.photos[i];
    const Image image =
        RenderScene(draft.scene, options.render_size, options.render_size);
    photo.embedding = pipeline.Extract(image);
    photo.quality = AssessQuality(image).overall;
    JpegSizeOptions size_options;
    size_options.resolution_scale = draft.resolution_scale;
    photo.bytes = EstimateJpegBytes(image, size_options);
    photo.exif = draft.exif;
    photo.scene = draft.scene;
    photo.title = vocabulary[draft.labels.front().first];
  });

  // Phase 3: labels → subsets.
  std::unordered_map<std::size_t, std::size_t> subset_of_label;
  for (std::size_t i = 0; i < drafts.size(); ++i) {
    for (const auto& [label, confidence] : drafts[i].labels) {
      auto [it, inserted] = subset_of_label.emplace(label, corpus.subsets.size());
      if (inserted) {
        SubsetSpec spec;
        spec.name = vocabulary[label];
        // Importance: the label's frequency in the full (modeled) source.
        spec.weight = 1000.0 * label_popularity.Probability(label);
        corpus.subsets.push_back(std::move(spec));
      }
      SubsetSpec& spec = corpus.subsets[it->second];
      spec.members.push_back(static_cast<PhotoId>(i));
      spec.relevance.push_back(confidence);
    }
  }

  // Phase 4: policy-required photos.
  if (options.required_fraction > 0.0) {
    const std::size_t count = static_cast<std::size_t>(
        options.required_fraction * static_cast<double>(corpus.num_photos()));
    corpus.required = [&] {
      std::vector<PhotoId> out;
      for (std::size_t idx : rng.SampleWithoutReplacement(corpus.num_photos(),
                                                          count)) {
        out.push_back(static_cast<PhotoId>(idx));
      }
      return out;
    }();
  }
  return corpus;
}

}  // namespace phocus
