#ifndef PHOCUS_DATAGEN_CORPUS_H_
#define PHOCUS_DATAGEN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"
#include "embedding/vector_ops.h"
#include "imaging/exif.h"
#include "imaging/scene.h"

/// \file corpus.h
/// The photo corpus handed from the dataset generators to the PHOcus Data
/// Representation Module: photos with embeddings/costs/metadata plus
/// pre-defined subset *specifications* (members + raw relevance). The
/// representation module (src/phocus/representation.h) turns a corpus into a
/// solvable ParInstance by normalizing relevance and materializing SIM.

namespace phocus {

/// One generated photo and everything derived from it.
struct CorpusPhoto {
  Embedding embedding;   ///< unit-norm visual embedding
  ExifMetadata exif;
  Cost bytes = 0;        ///< estimated stored size (the PAR cost)
  double quality = 0.0;  ///< overall no-reference quality in [0, 1]
  std::string title;     ///< indexable text (product title / caption)
  SceneParams scene;     ///< renderable parameters (for export/examples)
};

/// A pre-defined subset before normalization/SIM.
struct SubsetSpec {
  std::string name;
  double weight = 1.0;
  std::vector<PhotoId> members;
  /// Raw (unnormalized) relevance, aligned with members; empty = uniform.
  std::vector<double> relevance;
};

struct Corpus {
  std::string name;
  std::vector<CorpusPhoto> photos;
  std::vector<SubsetSpec> subsets;
  std::vector<PhotoId> required;  ///< S0
  std::uint64_t seed = 0;         ///< generator seed, for reproducibility

  std::size_t num_photos() const { return photos.size(); }

  /// Sum of photo costs (the archive size the budgets are quoted against).
  Cost TotalBytes() const;

  /// Mean subset cardinality (reported alongside Table 2).
  double MeanSubsetSize() const;
};

}  // namespace phocus

#endif  // PHOCUS_DATAGEN_CORPUS_H_
