#ifndef PHOCUS_DATAGEN_TABLE2_H_
#define PHOCUS_DATAGEN_TABLE2_H_

#include <string>

#include "datagen/corpus.h"

/// \file table2.h
/// Convenience constructors for the eight Table 2 datasets with the paper's
/// parameters (P-1K..P-100K from the Open-Images-like source; EC-Fashion /
/// EC-Electronics / EC-Home&Garden with 250 landing pages each).

namespace phocus {

/// Builds one of: "P-1K", "P-5K", "P-10K", "P-50K", "P-100K", "EC-Fashion",
/// "EC-Electronics", "EC-Home & Garden". Throws on unknown names.
/// `scale` uniformly divides the photo count (for quick test runs); 1 keeps
/// the paper's sizes. The per-dataset defaults (seeds, render size, EC
/// product counts matching Table 2) live here so every bench builds
/// identical data.
Corpus BuildTable2Corpus(const std::string& name, std::size_t scale = 1);

/// All eight Table 2 dataset names, in the paper's order.
const std::vector<std::string>& Table2DatasetNames();

/// Cache-aware variant: when the PHOCUS_CACHE_DIR environment variable is
/// set, generated corpora are stored there in the binary corpus format
/// (corpus_io.h) keyed by (name, scale); later calls load in milliseconds
/// instead of re-rendering. Without the variable this is exactly
/// BuildTable2Corpus.
Corpus CachedTable2Corpus(const std::string& name, std::size_t scale = 1);

}  // namespace phocus

#endif  // PHOCUS_DATAGEN_TABLE2_H_
